//! The megascale discrete-event fleet engine.
//!
//! Everything else in this crate advances one client's private
//! [`SimClock`](snapedge_net::SimClock) in a closed loop — the regime the
//! paper measures. This module is the regime the ROADMAP's north star
//! cares about: **thousands of concurrent clients** sharing an edge
//! fleet, where queueing at the server CPU (not link bandwidth alone)
//! decides whether offloading pays.
//!
//! # How it works
//!
//! One global virtual clock drives a binary-heap event queue
//! ([`snapedge_net::EventQueue`], ordered by `(time, seq)` so ties break
//! deterministically by push order). Each client runs a resumable round
//! state machine (a [`Workload`]) that *yields* at the moment it needs
//! the one shared resource — the server CPU — and the engine interleaves
//! those yields:
//!
//! * [`Ev::Arrive`]: a request reaches a client (open-loop arrivals may
//!   find the client busy and queue client-side).
//! * [`Ev::Admit`]: a client's uplinked snapshot asks for server CPU.
//!   The engine grants it at `max(request, busy_until[server])` — the
//!   difference **is** the queueing delay, recorded by the session as
//!   `enqueue`/`queue_wait`/`dequeue` trace events. Contention emerges
//!   from overlapping requests instead of an analytic approximation
//!   (contrast [`crate::contention`], which this engine supersedes for
//!   fleet-level questions).
//! * [`Ev::Release`]: the server CPU frees; the round's downlink and
//!   completion run on the client's private timeline.
//!
//! Links, captures and restores are per-client resources and ride each
//! session's private clock; only the server CPU serializes across
//! clients. (Snapshot restore/capture on the server ride the session's
//! pipeline too — the busy window the engine serializes is the inference
//! execution, the dominant term for DNN work.)
//!
//! Two workloads share the engine through one API: [`SessionWorkload`]
//! drives real [`OffloadSession`]s (real browsers, snapshots, deltas,
//! faults, failover — bit-identical to the legacy loop for one client)
//! and [`ModeledWorkload`] uses the calibrated analytic timings so 10k+
//! clients simulate in milliseconds. Both accept any config convertible
//! into a [`SessionConfig`] — including a bare
//! [`OffloadConfig`](crate::OffloadConfig).

use crate::balance::{jain, Balancer, DrrScheduler, DEFAULT_DRR_QUANTUM};
use crate::session::{OffloadSession, RoundReport, RoundStep, SessionConfig};
use crate::OffloadError;
use snapedge_dnn::zoo;
use snapedge_net::EventQueue;
use snapedge_rng::{splitmix64, Rng};
use snapedge_trace::{Summary, Trace};
use std::collections::VecDeque;
use std::time::Duration;

/// Snapshot size the analytic workload prices per request: the same
/// calibrated full-offload app state [`crate::contention`] uses.
const MODELED_SNAPSHOT_BYTES: u64 = 70 * 1024;

/// The per-round image seed both the engine and any legacy comparison
/// loop must use: a splitmix64 hash of `(engine_seed, client, round)`,
/// so every client/round pair gets an independent, reproducible image.
/// `round` is 1-based, matching [`RoundReport::round`].
pub fn round_image_seed(engine_seed: u64, client: u64, round: u64) -> u64 {
    let mut state = engine_seed
        .wrapping_add(client.wrapping_mul(0xA24B_AED4_963E_E407))
        .wrapping_add(round.wrapping_mul(0x9FB2_1C65_1E98_DF25));
    splitmix64(&mut state)
}

/// How requests reach the fleet over virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: every client issues at t=0 and re-issues `think`
    /// after each completion — the paper's interactive-user model (and
    /// the regime [`crate::contention`] simulated).
    ClosedLoop {
        /// Think time between a result and the next request.
        think: Duration,
    },
    /// Open-loop Poisson bursts: exponential interarrivals at `rate_hz`
    /// requests/second fleet-wide, each assigned to a uniformly random
    /// client. Requests landing on a busy client queue client-side.
    Poisson {
        /// Fleet-wide mean arrival rate, in requests per second.
        rate_hz: f64,
    },
    /// A diurnal curve: a raised-cosine rate swinging between `base_hz`
    /// (trough) and `peak_hz` (crest) once per `period`, sampled by
    /// thinning a Poisson stream at the crest rate.
    Diurnal {
        /// Trough arrival rate, in requests per second.
        base_hz: f64,
        /// Crest arrival rate, in requests per second.
        peak_hz: f64,
        /// Length of one full trough→crest→trough cycle.
        period: Duration,
    },
}

impl ArrivalProcess {
    /// Instantaneous arrival rate at virtual time `t` (open-loop shapes
    /// only; a closed loop has no free-running rate).
    fn rate_at(&self, t: Duration) -> f64 {
        match self {
            ArrivalProcess::ClosedLoop { .. } => 0.0,
            ArrivalProcess::Poisson { rate_hz } => *rate_hz,
            ArrivalProcess::Diurnal {
                base_hz,
                peak_hz,
                period,
            } => {
                let phase = if period.is_zero() {
                    0.0
                } else {
                    t.as_secs_f64() / period.as_secs_f64()
                };
                let swing = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                base_hz + (peak_hz - base_hz) * swing
            }
        }
    }

    /// Upper bound of [`ArrivalProcess::rate_at`] over all `t` — the
    /// thinning envelope.
    fn peak_rate(&self) -> f64 {
        match self {
            ArrivalProcess::ClosedLoop { .. } => 0.0,
            ArrivalProcess::Poisson { rate_hz } => *rate_hz,
            ArrivalProcess::Diurnal {
                base_hz, peak_hz, ..
            } => base_hz.max(*peak_hz),
        }
    }
}

/// What one completed round looked like from the fleet's point of view —
/// the workload-agnostic record [`FleetReport`] aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Which client completed the round.
    pub client: usize,
    /// The client's 1-based round number.
    pub round: usize,
    /// Global virtual time the result landed on the client's screen.
    pub finished_at: Duration,
    /// Click-to-result time as the client experienced it.
    pub total: Duration,
    /// Whether the round gave up on offloading and completed locally.
    pub fell_back: bool,
    /// Name of the endpoint that executed the inference (`"client"`
    /// for a fallback round).
    pub server: String,
    /// Interpreter operations the serving server's resource meter
    /// charged this round (zero when unmetered, modeled or local).
    pub ops_used: u64,
    /// Peak heap (cells) the meter observed on the serving server (zero
    /// when unmetered, modeled or local).
    pub peak_heap: usize,
    /// Whether the round was degraded to local *proactively* — the
    /// predictive/admission gate rejected the offload before any bytes
    /// committed to the wire (contrast [`RoundOutcome::fell_back`], the
    /// reactive exhaustion path).
    pub proactive: bool,
    /// Fleet index of the server the round targeted: the one that served
    /// it, or — for a round completed on the client — the candidate the
    /// session was aimed at when it degraded. Attributes per-server
    /// admit/reject counts in the [`FleetReport`].
    pub target: usize,
}

/// Where a client's round state machine paused — what a [`Workload`]
/// hands back to the engine.
#[derive(Debug)]
pub enum EngineStep {
    /// The round needs the server CPU of fleet candidate `server`, whose
    /// uplinked request is ready at global time `at`.
    NeedCompute {
        /// Fleet candidate index whose CPU is requested.
        server: usize,
        /// Global virtual time the request is ready to execute.
        at: Duration,
    },
    /// The round completed without (further) server CPU.
    Done(RoundOutcome),
}

/// A set of concurrent clients the engine can interleave: each client is
/// a resumable round state machine yielding at its server-CPU boundary.
///
/// The engine calls, per round and per client:
/// `begin_round` → (`compute` → `continue_round`)*, where the loop
/// repeats when a failover mid-round re-drives the uplink against a
/// different server.
pub trait Workload {
    /// Number of clients (fixed for the engine run).
    fn clients(&self) -> usize;

    /// Starts a round for `client`: its request was issued at global
    /// time `at` (never earlier than the client's own timeline), and the
    /// round's input image derives from `image_seed`.
    ///
    /// # Errors
    ///
    /// Propagates app/protocol/network failures from the round.
    fn begin_round(
        &mut self,
        client: usize,
        at: Duration,
        image_seed: u64,
    ) -> Result<EngineStep, OffloadError>;

    /// Grants the server CPU the client asked for, admitted at global
    /// time `admitted_at` (later than requested when the CPU was busy —
    /// the queueing delay). Returns the time the CPU frees.
    ///
    /// # Errors
    ///
    /// Propagates server-side execution failures.
    fn compute(&mut self, client: usize, admitted_at: Duration) -> Result<Duration, OffloadError>;

    /// Resumes the round after its compute grant: downlink, completion —
    /// or another [`EngineStep::NeedCompute`] when a mid-round failover
    /// re-drove the uplink against a different server.
    ///
    /// # Errors
    ///
    /// Propagates app/protocol/network failures from the round.
    fn continue_round(&mut self, client: usize) -> Result<EngineStep, OffloadError>;

    /// Like [`Workload::begin_round`], with the engine's queue-delay
    /// [`Balancer`] in hand — called instead of `begin_round` when
    /// balancing is on. Workloads that select servers (or gate
    /// admission) consult `balancer` for each candidate's predicted
    /// queueing delay; the default ignores it and stays load-blind.
    ///
    /// # Errors
    ///
    /// Propagates app/protocol/network failures from the round.
    fn begin_round_balanced(
        &mut self,
        client: usize,
        at: Duration,
        image_seed: u64,
        balancer: &Balancer,
    ) -> Result<EngineStep, OffloadError> {
        let _ = balancer;
        self.begin_round(client, at, image_seed)
    }

    /// Notifies the workload that `client`'s compute admission was
    /// parked behind `server`'s busy CPU at time `at` under fair-share
    /// ordering (tracing hook; the default does nothing).
    fn note_deferred(&mut self, client: usize, server: usize, at: Duration) {
        let _ = (client, server, at);
    }

    /// Notifies the workload that `clients` were granted `server`'s CPU
    /// together at time `at` as one opportunistic batch (tracing hook;
    /// the default does nothing).
    fn note_batch(&mut self, clients: &[usize], server: usize, at: Duration) {
        let _ = (clients, server, at);
    }
}

/// The full-fidelity workload: one real [`OffloadSession`] per client —
/// real browsers, snapshots, deltas, faults, fleet failover. Each
/// client's session is seeded `cfg.seed + client`, so client 0 of a
/// 1-client fleet replays the legacy loop bit for bit.
pub struct SessionWorkload {
    sessions: Vec<OffloadSession>,
    reports: Vec<RoundReport>,
}

impl SessionWorkload {
    /// Builds `clients` sessions from one config (anything convertible
    /// into a [`SessionConfig`], including a bare
    /// [`OffloadConfig`](crate::OffloadConfig)).
    ///
    /// # Errors
    ///
    /// Propagates session construction failures (unknown model, empty
    /// fleet, unreachable servers).
    pub fn new(
        cfg: impl Into<SessionConfig>,
        clients: usize,
    ) -> Result<SessionWorkload, OffloadError> {
        let cfg: SessionConfig = cfg.into();
        let mut sessions = Vec::with_capacity(clients);
        for client in 0..clients {
            let mut per_client = cfg.clone();
            per_client.seed = cfg.seed.wrapping_add(client as u64);
            sessions.push(OffloadSession::new(per_client)?);
        }
        Ok(SessionWorkload {
            sessions,
            reports: Vec::new(),
        })
    }

    /// Every completed [`RoundReport`], in completion order.
    pub fn reports(&self) -> &[RoundReport] {
        &self.reports
    }

    /// The event trace of one client's session (all its rounds).
    pub fn trace(&self, client: usize) -> Option<Trace> {
        self.sessions.get(client).map(OffloadSession::trace)
    }

    fn session(&mut self, client: usize) -> Result<&mut OffloadSession, OffloadError> {
        self.sessions
            .get_mut(client)
            .ok_or_else(|| OffloadError::Config(format!("workload has no client {client}")))
    }

    fn step_of(&mut self, client: usize, step: RoundStep) -> EngineStep {
        match step {
            RoundStep::NeedCompute => {
                let (server, at) = match self.sessions.get(client) {
                    Some(s) => (s.current_server(), s.now()),
                    None => (0, Duration::ZERO),
                };
                EngineStep::NeedCompute { server, at }
            }
            RoundStep::Done(report) => {
                let (finished_at, target) = self
                    .sessions
                    .get(client)
                    .map(|s| (s.now(), s.current_server()))
                    .unwrap_or_default();
                let outcome = RoundOutcome {
                    client,
                    round: report.round,
                    finished_at,
                    total: report.total,
                    fell_back: report.fell_back,
                    server: report.server.clone(),
                    ops_used: report.ops_used,
                    peak_heap: report.peak_heap,
                    proactive: report.proactive,
                    target,
                };
                self.reports.push(report);
                EngineStep::Done(outcome)
            }
        }
    }
}

impl Workload for SessionWorkload {
    fn clients(&self) -> usize {
        self.sessions.len()
    }

    fn begin_round(
        &mut self,
        client: usize,
        at: Duration,
        image_seed: u64,
    ) -> Result<EngineStep, OffloadError> {
        let session = self.session(client)?;
        session.advance_clock_to(at);
        let step = session.round_start(image_seed)?;
        Ok(self.step_of(client, step))
    }

    fn compute(&mut self, client: usize, admitted_at: Duration) -> Result<Duration, OffloadError> {
        let session = self.session(client)?;
        session.round_compute(admitted_at)?;
        Ok(session.now())
    }

    fn continue_round(&mut self, client: usize) -> Result<EngineStep, OffloadError> {
        let step = self.session(client)?.round_finish()?;
        Ok(self.step_of(client, step))
    }

    fn begin_round_balanced(
        &mut self,
        client: usize,
        at: Duration,
        image_seed: u64,
        balancer: &Balancer,
    ) -> Result<EngineStep, OffloadError> {
        // Hand the session the fleet-wide queue outlook before its round
        // starts: the current server's entry becomes the admission
        // prior, the full vector re-ranks failover candidates.
        let outlook = balancer.outlook(at);
        let session = self.session(client)?;
        session.set_queue_outlook(outlook);
        session.advance_clock_to(at);
        let step = session.round_start(image_seed)?;
        Ok(self.step_of(client, step))
    }

    fn note_deferred(&mut self, client: usize, _server: usize, at: Duration) {
        if let Some(session) = self.sessions.get_mut(client) {
            session.record_admit_deferred(at);
        }
    }

    fn note_batch(&mut self, clients: &[usize], _server: usize, at: Duration) {
        for &client in clients {
            if let Some(session) = self.sessions.get_mut(client) {
                session.record_batch_formed(at, clients.len());
            }
        }
    }
}

/// One client's in-flight modeled round.
#[derive(Debug, Clone, Copy)]
struct ModeledRound {
    clicked: Duration,
    server: usize,
    released: Duration,
}

/// The megascale workload: per-round timings derived from the same
/// calibrated device/link models the scenarios use (restore + full
/// execution + capture at the server; capture/transfer/restore on the
/// client side), with clients rotating round-robin over the fleet. No
/// browsers are built, so tens of thousands of clients simulate in
/// milliseconds — the fidelity trade [`crate::contention`] made, now
/// behind the same [`Workload`] API as real sessions.
pub struct ModeledWorkload {
    names: Vec<String>,
    service: Vec<Duration>,
    up: Vec<Duration>,
    down: Vec<Duration>,
    capture: Duration,
    restore: Duration,
    clients: usize,
    rounds: Vec<usize>,
    pending: Vec<Option<ModeledRound>>,
}

impl ModeledWorkload {
    /// Derives analytic timings for `clients` clients from one config
    /// (anything convertible into a [`SessionConfig`]).
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError`] for unknown models or an empty fleet.
    pub fn new(
        cfg: impl Into<SessionConfig>,
        clients: usize,
    ) -> Result<ModeledWorkload, OffloadError> {
        let cfg: SessionConfig = cfg.into();
        if cfg.servers.is_empty() {
            return Err(OffloadError::Config(
                "modeled workload needs at least one edge server in its fleet".into(),
            ));
        }
        let net = zoo::by_name(&cfg.model)?;
        let profile = net.profile();
        let bytes = MODELED_SNAPSHOT_BYTES;
        let mut names = Vec::with_capacity(cfg.servers.len());
        let mut service = Vec::with_capacity(cfg.servers.len());
        let mut up = Vec::with_capacity(cfg.servers.len());
        let mut down = Vec::with_capacity(cfg.servers.len());
        for spec in &cfg.servers {
            names.push(spec.name.clone());
            service.push(
                spec.device.restore_time(bytes)
                    + spec.device.full_exec_time(&profile)
                    + spec.device.capture_time(bytes),
            );
            up.push(spec.link.transfer_time(bytes)?);
            down.push(spec.link.transfer_time(bytes)?);
        }
        Ok(ModeledWorkload {
            names,
            service,
            up,
            down,
            capture: cfg.client_device.capture_time(bytes),
            restore: cfg.client_device.restore_time(bytes),
            clients,
            rounds: vec![0; clients],
            pending: vec![None; clients],
        })
    }

    fn slot(&mut self, client: usize) -> Result<&mut Option<ModeledRound>, OffloadError> {
        self.pending
            .get_mut(client)
            .ok_or_else(|| OffloadError::Config(format!("workload has no client {client}")))
    }

    /// Bumps and returns `client`'s 1-based round counter.
    fn next_round(&mut self, client: usize) -> Result<usize, OffloadError> {
        match self.rounds.get_mut(client) {
            Some(r) => {
                *r += 1;
                Ok(*r)
            }
            None => Err(OffloadError::Config(format!(
                "workload has no client {client}"
            ))),
        }
    }

    /// Parks the chosen round and yields its compute request.
    fn issue(
        &mut self,
        client: usize,
        at: Duration,
        server: usize,
    ) -> Result<EngineStep, OffloadError> {
        let ready = at + self.capture + self.up[server % self.up.len()];
        *self.slot(client)? = Some(ModeledRound {
            clicked: at,
            server,
            released: ready,
        });
        Ok(EngineStep::NeedCompute { server, at: ready })
    }
}

impl Workload for ModeledWorkload {
    fn clients(&self) -> usize {
        self.clients
    }

    fn begin_round(
        &mut self,
        client: usize,
        at: Duration,
        _image_seed: u64,
    ) -> Result<EngineStep, OffloadError> {
        let fleet = self.names.len();
        let round = self.next_round(client)?;
        // Load-blind round-robin server choice, offset by client so a
        // cold fleet spreads load instead of stampeding candidate 0 —
        // the legacy path `begin_round_balanced` supersedes when
        // balancing is on.
        let server = (client + round - 1) % fleet;
        self.issue(client, at, server)
    }

    fn begin_round_balanced(
        &mut self,
        client: usize,
        at: Duration,
        _image_seed: u64,
        balancer: &Balancer,
    ) -> Result<EngineStep, OffloadError> {
        let fleet = self.names.len();
        self.next_round(client)?;
        // Least-predicted-sojourn selection: per candidate, the wire and
        // CPU cost of the round plus the queueing delay the balancer
        // predicts at the moment the uplink would land. Ties go to the
        // lowest index, keeping selection deterministic.
        let mut server = 0usize;
        let mut best = Duration::MAX;
        for s in 0..fleet {
            let ready = at + self.capture + self.up[s];
            let sojourn = self.up[s]
                .saturating_add(balancer.predicted_wait(s, ready))
                .saturating_add(self.service[s])
                .saturating_add(self.down[s]);
            if sojourn < best {
                server = s;
                best = sojourn;
            }
        }
        self.issue(client, at, server)
    }

    fn compute(&mut self, client: usize, admitted_at: Duration) -> Result<Duration, OffloadError> {
        let service = &self.service;
        let pending = self
            .pending
            .get_mut(client)
            .ok_or_else(|| OffloadError::Config(format!("workload has no client {client}")))?;
        match pending.as_mut() {
            Some(round) => {
                round.released = admitted_at + service[round.server % service.len()];
                Ok(round.released)
            }
            None => Err(OffloadError::Protocol(
                "compute granted with no modeled round in flight".into(),
            )),
        }
    }

    fn continue_round(&mut self, client: usize) -> Result<EngineStep, OffloadError> {
        let round = match self.slot(client)?.take() {
            Some(round) => round,
            None => {
                return Err(OffloadError::Protocol(
                    "round continued with no modeled round in flight".into(),
                ))
            }
        };
        let fleet = self.names.len();
        let finished = round.released + self.down[round.server % fleet] + self.restore;
        Ok(EngineStep::Done(RoundOutcome {
            client,
            round: self.rounds.get(client).copied().unwrap_or_default(),
            finished_at: finished,
            total: finished - round.clicked,
            fell_back: false,
            server: self.names[round.server % fleet].clone(),
            ops_used: 0,
            peak_heap: 0,
            proactive: false,
            target: round.server % fleet,
        }))
    }
}

/// Load statistics of one fleet candidate over an engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerLoad {
    /// Server name (from its [`ServerSpec`](crate::ServerSpec)).
    pub name: String,
    /// Compute grants this server's CPU served.
    pub rounds: usize,
    /// Total virtual time its CPU spent executing.
    pub busy: Duration,
    /// `busy / makespan` — the duty cycle over the run (`0` for a run
    /// that never completed a round, where the makespan is zero).
    pub utilization: f64,
    /// Compute admissions routed to this server (every [`Ev::Admit`],
    /// whether granted immediately, deferred, or batched).
    pub admits: usize,
    /// Rounds the admission gate degraded to local while this server was
    /// the round's target — the queueing delay (or predicted link
    /// health) erased the offload win before any bytes shipped.
    pub rejects: usize,
    /// Opportunistic batches (two or more co-queued grants admitted
    /// together) this server formed. Zero without a batch window.
    pub batches: usize,
}

/// What a fleet run produced: throughput, latency percentiles (sojourn
/// time: request arrival → result on screen), queueing-delay
/// percentiles, and per-server load.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Number of clients simulated.
    pub clients: usize,
    /// Rounds completed across all clients.
    pub completed: usize,
    /// Rounds that gave up on offloading and completed locally.
    pub fallbacks: usize,
    /// Virtual time of the last completion.
    pub makespan: Duration,
    /// Completed rounds per virtual second (`completed / makespan`).
    pub throughput_rps: f64,
    /// Sojourn-time statistics (p50/p90/p95/p99 are nearest-rank).
    pub latency: Summary,
    /// Server-CPU queueing-delay statistics, one sample per compute
    /// grant (zero when the CPU was free).
    pub queue_wait: Summary,
    /// Per-candidate load, in fleet order.
    pub servers: Vec<ServerLoad>,
    /// Total metered interpreter operations across every completed round
    /// (zero for unmetered or modeled runs).
    pub total_ops: u64,
    /// Largest metered heap (cells) any serving server observed (zero
    /// for unmetered or modeled runs).
    pub peak_heap: usize,
    /// Jain's fairness index over per-client completed rounds, among
    /// clients that issued at least one round: `1.0` when every active
    /// client completed the same count, approaching `1/n` when one
    /// tenant monopolized the fleet.
    pub fairness: f64,
    /// Largest opportunistic batch any server formed (zero without a
    /// batch window, one-sized grants never count).
    pub max_batch: usize,
}

/// A global event on the engine's virtual clock.
#[derive(Debug)]
enum Ev {
    /// A request arrives at a client. A busy client parks it in its
    /// client-side backlog; an idle client starts a round.
    Arrive { client: usize },
    /// A client actually starts a round — immediately after an arrival
    /// found it idle, or once a backlogged request reached the front.
    /// `issued` is the request's original arrival time (the sojourn
    /// clock starts there, not at the round start).
    Begin { client: usize, issued: Duration },
    /// A client's uplinked request asks for a server CPU.
    Admit { client: usize, server: usize },
    /// A server CPU frees; the client's round resumes. `server` keys the
    /// fair-share queue the freed CPU should grant from next.
    Release { client: usize, server: usize },
}

/// The scheduler: one global `(time, seq)`-ordered event queue
/// interleaving every client of a [`Workload`] against the shared fleet
/// CPUs. Construct with [`Engine::sessions`] (real sessions),
/// [`Engine::modeled`] (analytic megascale) or [`Engine::with_workload`]
/// (anything implementing [`Workload`]), shape the traffic with the
/// builder setters, then [`Engine::run`].
pub struct Engine<W> {
    workload: W,
    server_names: Vec<String>,
    arrival: ArrivalProcess,
    duration: Duration,
    max_rounds: Option<usize>,
    seed: u64,
    event_log: Vec<String>,
    /// Queue-aware selection + admission control (default off: the
    /// load-blind paths replay bit for bit).
    balance: bool,
    /// Deficit-round-robin grant ordering per server (default off:
    /// arrival-order grants replay bit for bit).
    fair_share: bool,
    /// Opportunistic co-queued grant batching window (default `None`).
    batch_window: Option<Duration>,
}

impl Engine<SessionWorkload> {
    /// An engine over `clients` real [`OffloadSession`]s (see
    /// [`SessionWorkload`]).
    ///
    /// # Errors
    ///
    /// Propagates session construction failures.
    pub fn sessions(
        cfg: impl Into<SessionConfig>,
        clients: usize,
    ) -> Result<Engine<SessionWorkload>, OffloadError> {
        let cfg: SessionConfig = cfg.into();
        let names = cfg.servers.iter().map(|s| s.name.clone()).collect();
        let seed = cfg.seed;
        let (balance, fair, window) = (cfg.balance, cfg.fair_share, cfg.batch_window);
        let mut engine =
            Engine::with_workload(SessionWorkload::new(cfg, clients)?, names).seed(seed);
        engine.balance = balance;
        engine.fair_share = fair;
        engine.batch_window = window;
        Ok(engine)
    }
}

impl Engine<ModeledWorkload> {
    /// An engine over `clients` analytic clients (see
    /// [`ModeledWorkload`]) — the megascale entry point.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError`] for unknown models or an empty fleet.
    pub fn modeled(
        cfg: impl Into<SessionConfig>,
        clients: usize,
    ) -> Result<Engine<ModeledWorkload>, OffloadError> {
        let cfg: SessionConfig = cfg.into();
        let names = cfg.servers.iter().map(|s| s.name.clone()).collect();
        let seed = cfg.seed;
        let (balance, fair, window) = (cfg.balance, cfg.fair_share, cfg.batch_window);
        let mut engine =
            Engine::with_workload(ModeledWorkload::new(cfg, clients)?, names).seed(seed);
        engine.balance = balance;
        engine.fair_share = fair;
        engine.batch_window = window;
        Ok(engine)
    }
}

impl<W: Workload> Engine<W> {
    /// An engine over a caller-built workload. `server_names` labels the
    /// fleet candidates (by index) in the report.
    pub fn with_workload(workload: W, server_names: Vec<String>) -> Engine<W> {
        Engine {
            workload,
            server_names,
            arrival: ArrivalProcess::ClosedLoop {
                think: Duration::from_secs(2),
            },
            duration: Duration::from_secs(60),
            max_rounds: None,
            seed: 42,
            event_log: Vec::new(),
            balance: false,
            fair_share: false,
            batch_window: None,
        }
    }

    /// Sets the arrival process (default: closed loop, 2 s think time).
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Engine<W> {
        self.arrival = arrival;
        self
    }

    /// Sets the traffic horizon: open-loop arrivals are generated in
    /// `[0, duration)`, closed-loop clients stop re-issuing at it. Work
    /// in flight at the horizon always drains (default: 60 s).
    pub fn duration(mut self, duration: Duration) -> Engine<W> {
        self.duration = duration;
        self
    }

    /// Caps rounds per client (closed-loop traffic only; open-loop
    /// arrivals are horizon-bounded instead). Default: no cap.
    pub fn max_rounds(mut self, rounds: usize) -> Engine<W> {
        self.max_rounds = Some(rounds);
        self
    }

    /// Seeds arrival sampling and per-round image generation (the
    /// session/modeled constructors default this to the config's seed).
    pub fn seed(mut self, seed: u64) -> Engine<W> {
        self.seed = seed;
        self
    }

    /// Toggles queue-aware balancing: least-predicted-sojourn server
    /// selection plus the admission-control prior (the session/modeled
    /// constructors default this to the config's `balance` knob; off
    /// replays the load-blind paths bit for bit).
    pub fn balance(mut self, on: bool) -> Engine<W> {
        self.balance = on;
        self
    }

    /// Toggles per-tenant deficit-round-robin grant ordering (the
    /// constructors default this to the config's `fair_share` knob).
    pub fn fair_share(mut self, on: bool) -> Engine<W> {
        self.fair_share = on;
        self
    }

    /// Enables opportunistic batching of grants co-queued within
    /// `window` (the constructors default this to the config's
    /// `batch_window` knob).
    pub fn batch_window(mut self, window: Duration) -> Engine<W> {
        self.batch_window = Some(window);
        self
    }

    /// The workload, for post-run inspection (reports, traces).
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Every event the last [`Engine::run`] processed, in schedule
    /// order — the determinism witness (`t=…: kind client=… …` lines).
    pub fn event_log(&self) -> &[String] {
        &self.event_log
    }

    /// Pre-samples the open-loop arrival stream over `[0, duration)`.
    fn open_loop_arrivals(&self, clients: usize) -> Result<Vec<(Duration, usize)>, OffloadError> {
        let peak = self.arrival.peak_rate();
        if peak <= 0.0 || !peak.is_finite() {
            return Err(OffloadError::Config(format!(
                "open-loop arrival process needs a positive finite rate, got {peak}"
            )));
        }
        let mut rng = Rng::seed_from_u64(self.seed ^ 0xA221_5EED_0DDB_A115);
        let mut arrivals = Vec::new();
        let mut t = 0.0_f64;
        let horizon = self.duration.as_secs_f64();
        loop {
            // Exponential interarrival at the envelope rate...
            let u = rng.next_f64();
            t += -(1.0 - u).ln() / peak;
            if t >= horizon {
                break;
            }
            // ...thinned down to the instantaneous rate (a no-op for a
            // flat Poisson process, where rate_at == peak always).
            let at = Duration::from_secs_f64(t);
            let keep = rng.next_f64() < self.arrival.rate_at(at) / peak;
            let client = rng.gen_range_usize(0, clients);
            if keep {
                arrivals.push((at, client));
            }
        }
        Ok(arrivals)
    }

    /// Runs the fleet to completion: seeds the arrival stream, then
    /// drains the global event queue deterministically.
    ///
    /// Run an engine once; a second `run` on the same engine continues
    /// the workload's accumulated state (sessions keep their deltas and
    /// round counters) rather than replaying.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::Config`] for zero clients or a
    /// degenerate arrival process, and propagates workload failures.
    pub fn run(&mut self) -> Result<FleetReport, OffloadError> {
        let clients = self.workload.clients();
        if clients == 0 {
            return Err(OffloadError::Config(
                "fleet engine needs at least one client".into(),
            ));
        }
        let fleet = self.server_names.len().max(1);
        self.event_log.clear();

        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut backlog: Vec<VecDeque<Duration>> = vec![VecDeque::new(); clients];
        let mut busy: Vec<bool> = vec![false; clients];
        let mut issued: Vec<Duration> = vec![Duration::ZERO; clients];
        let mut rounds_done: Vec<usize> = vec![0; clients];
        let mut busy_until: Vec<Duration> = vec![Duration::ZERO; fleet];
        let mut busy_total: Vec<Duration> = vec![Duration::ZERO; fleet];
        let mut grants: Vec<usize> = vec![0; fleet];
        let mut latencies: Vec<Duration> = Vec::new();
        let mut waits: Vec<Duration> = Vec::new();
        let mut completed = 0usize;
        let mut fallbacks = 0usize;
        let mut makespan = Duration::ZERO;
        let mut total_ops = 0u64;
        let mut peak_heap = 0usize;
        // Queue-aware balancing state. The balancer is engine-owned so
        // both workload paths read one signal; it is fed on every grant
        // even when balancing is off (pure state, zero output impact),
        // keeping the off path byte-identical.
        let mut balancer = Balancer::new(fleet);
        // Fair share and batching both *park* admissions instead of
        // granting in strict arrival order, so they share one deferred
        // grant path keyed by server.
        let defer = self.fair_share || self.batch_window.is_some();
        let mut pending: Vec<VecDeque<(usize, Duration)>> = vec![VecDeque::new(); fleet];
        let mut drr: Vec<DrrScheduler> = (0..fleet)
            .map(|_| DrrScheduler::new(DEFAULT_DRR_QUANTUM))
            .collect();
        let mut admits: Vec<usize> = vec![0; fleet];
        let mut rejects: Vec<usize> = vec![0; fleet];
        let mut batches: Vec<usize> = vec![0; fleet];
        let mut completed_by: Vec<usize> = vec![0; clients];
        let mut max_batch = 0usize;

        match self.arrival {
            ArrivalProcess::ClosedLoop { .. } => {
                for client in 0..clients {
                    queue.push(Duration::ZERO, Ev::Arrive { client });
                }
            }
            _ => {
                for (at, client) in self.open_loop_arrivals(clients)? {
                    queue.push(at, Ev::Arrive { client });
                }
            }
        }

        while let Some((now, event)) = queue.pop() {
            match event {
                Ev::Arrive { client } => {
                    self.event_log
                        .push(format!("t={now:?}: arrive client={client}"));
                    if busy[client] {
                        backlog[client].push_back(now);
                        continue;
                    }
                    busy[client] = true;
                    queue.push(
                        now,
                        Ev::Begin {
                            client,
                            issued: now,
                        },
                    );
                }
                Ev::Begin { client, issued: at } => {
                    self.event_log
                        .push(format!("t={now:?}: begin client={client} issued={at:?}"));
                    issued[client] = at;
                    rounds_done[client] += 1;
                    let seed =
                        round_image_seed(self.seed, client as u64, rounds_done[client] as u64);
                    let step = if self.balance {
                        self.workload
                            .begin_round_balanced(client, now, seed, &balancer)?
                    } else {
                        self.workload.begin_round(client, now, seed)?
                    };
                    Self::dispatch(
                        &mut queue,
                        &mut self.event_log,
                        client,
                        step,
                        &mut DrainState {
                            arrival: &self.arrival,
                            duration: self.duration,
                            max_rounds: self.max_rounds,
                            backlog: &mut backlog,
                            busy: &mut busy,
                            issued: &mut issued,
                            rounds_done: &mut rounds_done,
                            latencies: &mut latencies,
                            completed: &mut completed,
                            fallbacks: &mut fallbacks,
                            makespan: &mut makespan,
                            total_ops: &mut total_ops,
                            peak_heap: &mut peak_heap,
                            rejects: &mut rejects,
                            completed_by: &mut completed_by,
                        },
                    );
                }
                Ev::Admit { client, server } => {
                    let idx = server % fleet;
                    admits[idx] += 1;
                    if !defer {
                        // Arrival-order grant — byte-identical to the
                        // pre-balancing engine (the balancer feed is
                        // pure state, invisible in every output).
                        let start = now.max(busy_until[idx]);
                        waits.push(start - now);
                        self.event_log.push(format!(
                            "t={now:?}: admit client={client} server={idx} start={start:?}"
                        ));
                        let released = self.workload.compute(client, start)?;
                        balancer.note_grant(
                            idx,
                            start - now,
                            released.saturating_sub(start),
                            released,
                        );
                        busy_until[idx] = released;
                        busy_total[idx] += released.saturating_sub(start);
                        grants[idx] += 1;
                        queue.push(
                            released,
                            Ev::Release {
                                client,
                                server: idx,
                            },
                        );
                    } else {
                        // Fair-share / batching path: park the request
                        // behind the server's CPU; an idle CPU grants
                        // (and opportunistically batches) right away.
                        self.event_log.push(format!(
                            "t={now:?}: admit client={client} server={idx} deferred"
                        ));
                        pending[idx].push_back((client, now));
                        balancer.set_queue_depth(idx, pending[idx].len());
                        if busy_until[idx] <= now {
                            Self::grant_parked(
                                &mut self.workload,
                                &mut self.event_log,
                                &mut queue,
                                &mut balancer,
                                &mut pending[idx],
                                if self.fair_share {
                                    Some(&mut drr[idx])
                                } else {
                                    None
                                },
                                self.batch_window,
                                idx,
                                now,
                                GrantStats {
                                    waits: &mut waits,
                                    busy_until: &mut busy_until[idx],
                                    busy_total: &mut busy_total[idx],
                                    grants: &mut grants[idx],
                                    batches: &mut batches[idx],
                                    max_batch: &mut max_batch,
                                },
                            )?;
                        } else {
                            self.workload.note_deferred(client, idx, now);
                        }
                    }
                }
                Ev::Release { client, server } => {
                    self.event_log
                        .push(format!("t={now:?}: release client={client}"));
                    let step = self.workload.continue_round(client)?;
                    Self::dispatch(
                        &mut queue,
                        &mut self.event_log,
                        client,
                        step,
                        &mut DrainState {
                            arrival: &self.arrival,
                            duration: self.duration,
                            max_rounds: self.max_rounds,
                            backlog: &mut backlog,
                            busy: &mut busy,
                            issued: &mut issued,
                            rounds_done: &mut rounds_done,
                            latencies: &mut latencies,
                            completed: &mut completed,
                            fallbacks: &mut fallbacks,
                            makespan: &mut makespan,
                            total_ops: &mut total_ops,
                            peak_heap: &mut peak_heap,
                            rejects: &mut rejects,
                            completed_by: &mut completed_by,
                        },
                    );
                    if defer {
                        // The freed CPU grants the next parked request
                        // (the last member of a batch frees it).
                        let idx = server % fleet;
                        if busy_until[idx] <= now && !pending[idx].is_empty() {
                            Self::grant_parked(
                                &mut self.workload,
                                &mut self.event_log,
                                &mut queue,
                                &mut balancer,
                                &mut pending[idx],
                                if self.fair_share {
                                    Some(&mut drr[idx])
                                } else {
                                    None
                                },
                                self.batch_window,
                                idx,
                                now,
                                GrantStats {
                                    waits: &mut waits,
                                    busy_until: &mut busy_until[idx],
                                    busy_total: &mut busy_total[idx],
                                    grants: &mut grants[idx],
                                    batches: &mut batches[idx],
                                    max_batch: &mut max_batch,
                                },
                            )?;
                        }
                    }
                }
            }
        }

        let throughput_rps = if makespan.is_zero() {
            0.0
        } else {
            completed as f64 / makespan.as_secs_f64()
        };
        let servers = self
            .server_names
            .iter()
            .enumerate()
            .map(|(idx, name)| ServerLoad {
                name: name.clone(),
                rounds: grants.get(idx).copied().unwrap_or_default(),
                busy: busy_total.get(idx).copied().unwrap_or_default(),
                utilization: if makespan.is_zero() {
                    0.0
                } else {
                    (busy_total
                        .get(idx)
                        .copied()
                        .unwrap_or_default()
                        .as_secs_f64()
                        / makespan.as_secs_f64())
                    .min(1.0)
                },
                admits: admits.get(idx).copied().unwrap_or_default(),
                rejects: rejects.get(idx).copied().unwrap_or_default(),
                batches: batches.get(idx).copied().unwrap_or_default(),
            })
            .collect();
        // Fairness reads over clients that actually entered the run —
        // idle provisioned clients would dilute the index.
        let active: Vec<f64> = rounds_done
            .iter()
            .zip(&completed_by)
            .filter(|&(&issued_rounds, _)| issued_rounds > 0)
            .map(|(_, &done)| done as f64)
            .collect();
        Ok(FleetReport {
            clients,
            completed,
            fallbacks,
            makespan,
            throughput_rps,
            latency: Summary::of(&latencies),
            queue_wait: Summary::of(&waits),
            servers,
            total_ops,
            peak_heap,
            fairness: jain(&active),
            max_batch,
        })
    }

    /// Grants the front of `server`'s fair-share queue at time `now`:
    /// the DRR ring picks the tenant when fair share is on (arrival
    /// order otherwise), and a batch window sweeps in every parked
    /// request enqueued within `window` of the primary. Each member gets
    /// its own compute grant and release; the CPU reservation covers the
    /// whole batch span once.
    #[allow(clippy::too_many_arguments)]
    fn grant_parked(
        workload: &mut W,
        event_log: &mut Vec<String>,
        queue: &mut EventQueue<Ev>,
        balancer: &mut Balancer,
        pending: &mut VecDeque<(usize, Duration)>,
        mut drr: Option<&mut DrrScheduler>,
        window: Option<Duration>,
        idx: usize,
        now: Duration,
        stats: GrantStats<'_>,
    ) -> Result<(), OffloadError> {
        let Some(&(head_client, _)) = pending.front() else {
            return Ok(());
        };
        let primary = match drr.as_deref_mut() {
            Some(sched) => {
                let waiting: Vec<usize> = pending.iter().map(|&(c, _)| c).collect();
                sched.pick(&waiting).unwrap_or(head_client)
            }
            None => head_client,
        };
        let pos = pending.iter().position(|&(c, _)| c == primary).unwrap_or(0);
        let Some((_, primary_enq)) = pending.remove(pos) else {
            return Ok(());
        };
        let mut batch: Vec<(usize, Duration)> = vec![(primary, primary_enq)];
        if let Some(window) = window {
            // Sweep in every parked request enqueued within the window
            // of the primary (two-sided: a DRR primary may sit behind
            // older requests that are *outside* its window).
            let lo = primary_enq.saturating_sub(window);
            let hi = primary_enq.saturating_add(window);
            let mut keep = VecDeque::with_capacity(pending.len());
            while let Some((c, enq)) = pending.pop_front() {
                if enq >= lo && enq <= hi {
                    batch.push((c, enq));
                } else {
                    keep.push_back((c, enq));
                }
            }
            *pending = keep;
        }
        let mut span_end = now;
        for &(client, enq) in &batch {
            let wait = now.saturating_sub(enq);
            stats.waits.push(wait);
            event_log.push(format!(
                "t={now:?}: grant client={client} server={idx} enq={enq:?}"
            ));
            let released = workload.compute(client, now)?;
            queue.push(
                released,
                Ev::Release {
                    client,
                    server: idx,
                },
            );
            if let Some(sched) = drr.as_deref_mut() {
                sched.charge(client, released.saturating_sub(now));
            }
            balancer.note_grant(idx, wait, released.saturating_sub(now), released);
            span_end = span_end.max(released);
            *stats.grants += 1;
        }
        *stats.busy_until = (*stats.busy_until).max(span_end);
        *stats.busy_total += span_end.saturating_sub(now);
        if batch.len() >= 2 {
            *stats.batches += 1;
            *stats.max_batch = (*stats.max_batch).max(batch.len());
            event_log.push(format!(
                "t={now:?}: batch server={idx} size={}",
                batch.len()
            ));
            let members: Vec<usize> = batch.iter().map(|&(c, _)| c).collect();
            workload.note_batch(&members, idx, now);
        }
        balancer.set_queue_depth(idx, pending.len());
        Ok(())
    }

    /// Routes a workload step: a compute request re-enters the queue, a
    /// completion books statistics and schedules the client's next round
    /// (closed-loop think, or the oldest backlogged open-loop arrival).
    fn dispatch(
        queue: &mut EventQueue<Ev>,
        event_log: &mut Vec<String>,
        client: usize,
        step: EngineStep,
        state: &mut DrainState<'_>,
    ) {
        match step {
            EngineStep::NeedCompute { server, at } => {
                queue.push(at, Ev::Admit { client, server });
            }
            EngineStep::Done(outcome) => {
                event_log.push(format!(
                    "t={:?}: done client={client} round={} server={}",
                    outcome.finished_at, outcome.round, outcome.server
                ));
                *state.completed += 1;
                if let Some(done) = state.completed_by.get_mut(client) {
                    *done += 1;
                }
                if outcome.fell_back {
                    *state.fallbacks += 1;
                }
                if outcome.proactive {
                    // Admission control turned the offload down: charge
                    // the reject to the server the round was aimed at.
                    if let Some(rejected) = state.rejects.get_mut(outcome.target) {
                        *rejected += 1;
                    }
                }
                *state.total_ops += outcome.ops_used;
                *state.peak_heap = (*state.peak_heap).max(outcome.peak_heap);
                state
                    .latencies
                    .push(outcome.finished_at.saturating_sub(state.issued[client]));
                *state.makespan = (*state.makespan).max(outcome.finished_at);
                state.busy[client] = false;
                match state.arrival {
                    ArrivalProcess::ClosedLoop { think } => {
                        let capped = state
                            .max_rounds
                            .is_some_and(|cap| state.rounds_done[client] >= cap);
                        let next = outcome.finished_at + *think;
                        if !capped && next < state.duration {
                            queue.push(next, Ev::Arrive { client });
                        }
                    }
                    _ => {
                        if let Some(arrived) = state.backlog[client].pop_front() {
                            // The request waited client-side; it starts
                            // the moment the client frees, but its
                            // sojourn clock started at arrival.
                            state.busy[client] = true;
                            queue.push(
                                arrived.max(outcome.finished_at),
                                Ev::Begin {
                                    client,
                                    issued: arrived,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The mutable run-loop state [`Engine::dispatch`] books completions
/// into (split out so the borrow of `self.workload` and the borrow of
/// the statistics can coexist).
struct DrainState<'a> {
    arrival: &'a ArrivalProcess,
    duration: Duration,
    max_rounds: Option<usize>,
    backlog: &'a mut Vec<VecDeque<Duration>>,
    busy: &'a mut Vec<bool>,
    issued: &'a mut Vec<Duration>,
    rounds_done: &'a mut Vec<usize>,
    latencies: &'a mut Vec<Duration>,
    completed: &'a mut usize,
    fallbacks: &'a mut usize,
    makespan: &'a mut Duration,
    total_ops: &'a mut u64,
    peak_heap: &'a mut usize,
    rejects: &'a mut Vec<usize>,
    completed_by: &'a mut Vec<usize>,
}

/// The per-server mutable slots a deferred grant updates (split out so
/// the workload borrow and the statistics borrows can coexist inside
/// [`Engine::grant_parked`]).
struct GrantStats<'a> {
    waits: &'a mut Vec<Duration>,
    busy_until: &'a mut Duration,
    busy_total: &'a mut Duration,
    grants: &'a mut usize,
    batches: &'a mut usize,
    max_batch: &'a mut usize,
}
