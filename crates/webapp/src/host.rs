//! Host (native) objects: the bridge between MiniJS apps and the embedding
//! system. The ML framework of the paper (Caffe.js) is exposed to apps as
//! the host object `model` — `snapedge-core` registers an implementation
//! that runs the DNN engine and charges simulated device time.

use crate::browser::Core;
use crate::value::JsValue;
use crate::WebError;

/// A native object callable from MiniJS (e.g. `model.inference(x)`).
///
/// Host objects are part of the *environment*, not the app state: snapshots
/// never serialize them, which mirrors the paper — the browser and the ML
/// framework exist on both sides; only app state migrates.
pub trait HostObject {
    /// Invokes `object.method(args...)`.
    ///
    /// # Errors
    ///
    /// Implementations return [`WebError::Runtime`] for unknown methods or
    /// bad arguments.
    fn call(
        &mut self,
        method: &str,
        args: &[JsValue],
        core: &mut Core,
    ) -> Result<JsValue, WebError>;

    /// Reads `object.property`. Defaults to an error.
    ///
    /// # Errors
    ///
    /// Returns [`WebError::Runtime`] unless overridden.
    fn get(&mut self, property: &str, _core: &mut Core) -> Result<JsValue, WebError> {
        Err(WebError::Runtime(format!(
            "host object has no property {property:?}"
        )))
    }
}

/// Determinism class of a registered host object, declared by the
/// embedder at registration time ([`crate::Browser::register_host_with_effect`]).
///
/// The static effect analysis (`snapedge-analyze`) cannot see inside a
/// native implementation, so the tag is the embedder's *contract*:
///
/// * [`HostEffect::Deterministic`] promises the object is a pure function
///   of its arguments — it may allocate fresh result cells on the heap but
///   never mutates existing app state (globals, reachable heap regions,
///   listeners, the event queue). The paper's Caffe.js `model` object
///   satisfies this.
/// * [`HostEffect::Dom`] may read or edit the document. That is still
///   *replayable*: DOM state ships in every snapshot and delta and is
///   never pruned by effect analysis.
/// * [`HostEffect::Clock`] / [`HostEffect::Random`] / [`HostEffect::Io`]
///   make two executions of the same snapshot disagree — apps reaching
///   them are rejected before any link bytes are spent.
///
/// Variants are ordered weakest-to-strongest so `max` picks the worst
/// effect a piece of code can reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HostEffect {
    /// Pure function of its arguments; may allocate, never mutates.
    Deterministic,
    /// Touches the document — replayable, snapshots carry the DOM.
    Dom,
    /// Reads a wall clock: nondeterministic across replays.
    Clock,
    /// Draws randomness: nondeterministic across replays.
    Random,
    /// External I/O (network, storage): nondeterministic across replays.
    Io,
}

impl HostEffect {
    /// `true` when replaying the same snapshot elsewhere can diverge.
    pub fn is_nondeterministic(self) -> bool {
        matches!(
            self,
            HostEffect::Clock | HostEffect::Random | HostEffect::Io
        )
    }

    /// Stable lowercase name (used in diagnostics and trace events).
    pub fn label(self) -> &'static str {
        match self {
            HostEffect::Deterministic => "deterministic",
            HostEffect::Dom => "dom",
            HostEffect::Clock => "clock",
            HostEffect::Random => "random",
            HostEffect::Io => "io",
        }
    }
}

/// A trivial host object backed by a closure — convenient in tests.
pub struct FnHost<F>(pub F);

impl<F> HostObject for FnHost<F>
where
    F: FnMut(&str, &[JsValue], &mut Core) -> Result<JsValue, WebError>,
{
    fn call(
        &mut self,
        method: &str,
        args: &[JsValue],
        core: &mut Core,
    ) -> Result<JsValue, WebError> {
        (self.0)(method, args, core)
    }
}
