//! The browser: heap + DOM + event loop + registered host objects.
//!
//! This is the WebKit stand-in. Both the client device and the edge server
//! run one `Browser`; offloading moves a [`Snapshot`](crate::Snapshot)
//! between them.

use crate::ast::FunctionDef;
use crate::delta::{CaptureHints, SnapCache};
use crate::dom::{Document, DomNodeId};
use crate::host::{HostEffect, HostObject};
use crate::intern::{Ident, Symbol};
use crate::interp::FrameLayout;
use crate::meter::{Meter, MeterLimits};
use crate::value::{Heap, JsValue, ObjId};
use crate::WebError;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique browser ids, so a [`StateBase`](crate::StateBase)
/// captured from one browser is never mistaken for an incremental anchor
/// of another.
static BROWSER_ID: AtomicU64 = AtomicU64::new(1);

/// A registered event listener.
#[derive(Debug, Clone, PartialEq)]
pub struct Listener {
    /// Target element.
    pub target: DomNodeId,
    /// Event name (`"click"`, `"front_complete"`, ...).
    pub event: String,
    /// Name of the handling top-level function.
    pub handler: String,
}

/// An event waiting in the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingEvent {
    /// Target element.
    pub target: DomNodeId,
    /// Event name.
    pub event: String,
}

/// The global variable table, keyed by interned [`Symbol`] with
/// write-barrier dirty tracking: every insert/remove records which
/// bindings changed since the last [`Globals::clear_dirty`], so delta
/// capture only deep-compares globals that were actually touched.
///
/// Equality compares bindings only — dirty bookkeeping is capture
/// machinery, not state.
#[derive(Debug, Clone, Default)]
pub struct Globals {
    map: BTreeMap<Symbol, JsValue>,
    dirty: BTreeSet<Symbol>,
}

impl PartialEq for Globals {
    fn eq(&self, other: &Globals) -> bool {
        self.map == other.map
    }
}

impl Globals {
    /// Reads a binding by symbol.
    pub fn get(&self, sym: Symbol) -> Option<&JsValue> {
        self.map.get(&sym)
    }

    /// Reads a binding by name (interning it first).
    pub fn get_str(&self, name: &str) -> Option<&JsValue> {
        self.map.get(&Symbol::intern(name))
    }

    /// Creates or overwrites a binding, marking it dirty.
    pub fn insert(&mut self, sym: Symbol, value: JsValue) -> Option<JsValue> {
        self.dirty.insert(sym);
        self.map.insert(sym, value)
    }

    /// Removes a binding, marking it dirty.
    pub fn remove(&mut self, sym: Symbol) -> Option<JsValue> {
        self.dirty.insert(sym);
        self.map.remove(&sym)
    }

    /// `true` when a binding exists for this symbol.
    pub fn contains(&self, sym: Symbol) -> bool {
        self.map.contains_key(&sym)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no binding exists.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates bindings in symbol (intern) order. Output-facing callers
    /// must use [`Globals::iter_sorted`] instead — wire formats are
    /// defined in *name* order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &JsValue)> {
        self.map.iter().map(|(s, v)| (*s, v))
    }

    /// Bindings resolved to identifiers, sorted by name — the order every
    /// serialized artifact (snapshot, delta) uses.
    pub fn iter_sorted(&self) -> Vec<(Ident, &JsValue)> {
        let mut out: Vec<(Ident, &JsValue)> = self
            .map
            .iter()
            .map(|(s, v)| (Ident::from_symbol(*s), v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Binding names, sorted.
    pub fn names_sorted(&self) -> Vec<Ident> {
        let mut out: Vec<Ident> = self.map.keys().map(|s| Ident::from_symbol(*s)).collect();
        out.sort();
        out
    }

    /// Drops every binding (and all dirty bookkeeping).
    pub fn clear(&mut self) {
        self.map.clear();
        self.dirty.clear();
    }

    /// Bindings touched since the last [`Globals::clear_dirty`].
    pub fn dirty(&self) -> &BTreeSet<Symbol> {
        &self.dirty
    }

    /// Anchors a capture base: from here on, [`Globals::dirty`] names
    /// exactly the bindings that may differ from this instant.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }
}

/// Everything a snapshot serializes (plus interpreter bookkeeping).
/// Host objects receive `&mut Core` so they can allocate results on the
/// heap and touch the DOM.
#[derive(Default, Clone)]
pub struct Core {
    /// The JS object heap.
    pub heap: Heap,
    /// The document.
    pub doc: Document,
    /// Global variables (symbol-keyed, dirty-tracked).
    pub globals: Globals,
    /// Top-level functions, keyed by interned name.
    pub functions: BTreeMap<Symbol, Rc<FunctionDef>>,
    /// Event listeners in registration order.
    pub listeners: Vec<Listener>,
    /// Pending events, FIFO.
    pub queue: VecDeque<PendingEvent>,
    /// Lines printed with `console.log`.
    pub console: Vec<String>,
    pub(crate) steps: u64,
}

impl Core {
    /// Function definitions sorted by name — the order every serialized
    /// artifact uses (the map itself iterates in intern order).
    pub fn functions_sorted(&self) -> Vec<&Rc<FunctionDef>> {
        let mut defs: Vec<&Rc<FunctionDef>> = self.functions.values().collect();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        defs
    }

    /// Function names, sorted.
    pub fn function_names_sorted(&self) -> Vec<Ident> {
        let mut names: Vec<Ident> = self.functions.values().map(|d| d.name.clone()).collect();
        names.sort();
        names
    }
}

impl Core {
    fn new() -> Core {
        Core {
            doc: Document::new(),
            ..Core::default()
        }
    }
}

/// Outcome of pumping the event loop.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Queue drained; `events` handlers ran.
    Idle {
        /// Number of events whose handlers executed.
        events: usize,
    },
    /// Execution stopped *just before* dispatching the offload-trigger
    /// event — the moment the paper captures its snapshot. The event is
    /// still at the front of the queue (so the snapshot re-dispatches it).
    OffloadPoint {
        /// `id` attribute of the event's target element.
        target_id: String,
        /// The event name that triggered offloading.
        event: String,
    },
}

/// The web runtime: owns the app state ([`Core`]) and the environment
/// (host objects, step limits).
///
/// # Example
///
/// ```
/// use snapedge_webapp::Browser;
///
/// # fn main() -> Result<(), snapedge_webapp::WebError> {
/// let mut b = Browser::new();
/// b.load_html(r#"<html><body><div id="out"></div></body>
///   <script>
///     var el = document.getElementById("out");
///     el.textContent = "hello";
///   </script></html>"#)?;
/// assert_eq!(b.element_text("out")?, "hello");
/// # Ok(())
/// # }
/// ```
pub struct Browser {
    pub(crate) core: Core,
    pub(crate) hosts: BTreeMap<Symbol, Box<dyn HostObject>>,
    pub(crate) host_effects: BTreeMap<Symbol, HostEffect>,
    pub(crate) meter: Option<Meter>,
    pub(crate) capture_hints: Option<CaptureHints>,
    offload_trigger: Option<String>,
    max_steps: u64,
    /// Process-unique id, stamped into [`StateBase`](crate::StateBase)
    /// origins so incremental capture never trusts a foreign base.
    pub(crate) browser_id: u64,
    /// Reachability index + dirty-anchor token of the most recent
    /// [`Browser::state_base`], if still valid.
    pub(crate) snap_cache: Option<SnapCache>,
    /// Per-function frame layouts (locals → slots), validated against the
    /// registered definition by pointer identity.
    pub(crate) layout_cache: BTreeMap<Symbol, (Rc<FunctionDef>, Rc<FrameLayout>)>,
    /// Rendered `Float32Array` literals keyed by
    /// `(heap generation, cell, version)` — clean payload cells reuse
    /// their serialized text across captures (structural sharing).
    pub(crate) render_cache: BTreeMap<(u64, ObjId, u32), Rc<str>>,
}

impl Default for Browser {
    fn default() -> Self {
        Browser::new()
    }
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("heap_cells", &self.core.heap.len())
            .field("dom_nodes", &self.core.doc.node_count())
            .field("globals", &self.core.globals.len())
            .field("functions", &self.core.functions.len())
            .field("listeners", &self.core.listeners.len())
            .field("queued_events", &self.core.queue.len())
            .field("hosts", &self.host_names())
            .finish()
    }
}

impl Browser {
    /// A fresh browser with an empty document.
    pub fn new() -> Browser {
        Browser {
            core: Core::new(),
            hosts: BTreeMap::new(),
            host_effects: BTreeMap::new(),
            meter: None,
            capture_hints: None,
            offload_trigger: None,
            max_steps: 50_000_000,
            browser_id: BROWSER_ID.fetch_add(1, Ordering::Relaxed),
            snap_cache: None,
            layout_cache: BTreeMap::new(),
            render_cache: BTreeMap::new(),
        }
    }

    /// Installs a resource meter: subsequent execution, host-API calls and
    /// snapshot captures are charged against `limits` and fail with
    /// [`WebError::ResourceExhausted`] when a cap trips. Replaces any
    /// existing meter (counters restart at zero). Like host objects, the
    /// meter is *environment*: snapshots never carry it.
    pub fn set_meter(&mut self, limits: MeterLimits) {
        self.meter = Some(Meter::new(limits));
    }

    /// Removes the meter; execution is unmetered again (the default).
    pub fn clear_meter(&mut self) {
        self.meter = None;
    }

    /// The installed meter and its usage counters, if any.
    pub fn meter(&self) -> Option<&Meter> {
        self.meter.as_ref()
    }

    /// Charges `ops` metered operations (no-op without a meter). Used by
    /// host-API dispatch and snapshot capture, which do real work that
    /// individual interpreter steps do not account for.
    pub(crate) fn meter_charge(&mut self, ops: u64) -> Result<(), WebError> {
        if let Some(m) = self.meter.as_mut() {
            m.charge(ops, self.core.heap.len())?;
        }
        Ok(())
    }

    /// Registers a host object reachable from MiniJS as a global (e.g.
    /// name `"model"` makes `model.inference(x)` dispatch to `host`).
    ///
    /// Registering through this method vouches the object as
    /// [`HostEffect::Deterministic`]; use
    /// [`Browser::register_host_with_effect`] to declare otherwise.
    pub fn register_host(&mut self, name: &str, host: Box<dyn HostObject>) {
        self.register_host_with_effect(name, host, HostEffect::Deterministic);
    }

    /// Registers a host object together with its declared effect class —
    /// the contract the static effect analysis trusts (see
    /// [`HostEffect`]).
    pub fn register_host_with_effect(
        &mut self,
        name: &str,
        host: Box<dyn HostObject>,
        effect: HostEffect,
    ) {
        let sym = Symbol::intern(name);
        self.hosts.insert(sym, host);
        self.host_effects.insert(sym, effect);
    }

    /// `true` when a host object with this name is registered.
    pub fn has_host(&self, name: &str) -> bool {
        self.hosts.contains_key(&Symbol::intern(name))
    }

    /// Names of all registered host objects, in deterministic (name)
    /// order. The static verifier extends its host-API allowlist with
    /// these.
    pub fn host_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.hosts.keys().map(|s| s.resolve().to_string()).collect();
        names.sort();
        names
    }

    /// Registered host objects with their declared effect classes, in
    /// deterministic (name) order — the input the effect analysis tags
    /// host calls with.
    pub fn host_effects(&self) -> Vec<(String, HostEffect)> {
        let mut out: Vec<(String, HostEffect)> = self
            .host_effects
            .iter()
            .map(|(s, e)| (s.resolve().to_string(), *e))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Installs statically-derived capture hints: delta capture skips the
    /// deep heap comparison for globals outside the hinted write set.
    /// `None` (the default) restores the unhinted full-walk diff. The
    /// caller is responsible for only installing hints derived from a
    /// *sound* effect analysis of the loaded app — unsound hints silently
    /// drop state changes from deltas.
    pub fn set_capture_hints(&mut self, hints: Option<CaptureHints>) {
        self.capture_hints = hints;
    }

    /// The installed capture hints, if any.
    pub fn capture_hints(&self) -> Option<&CaptureHints> {
        self.capture_hints.as_ref()
    }

    /// Arms offloading: the event loop will stop just before dispatching
    /// an event with this name (Section III-A: the snapshot is taken just
    /// before the expensive handler runs). `None` disarms.
    pub fn set_offload_trigger(&mut self, event: Option<&str>) {
        self.offload_trigger = event.map(str::to_string);
    }

    /// The armed offload trigger, if any.
    pub fn offload_trigger(&self) -> Option<&str> {
        self.offload_trigger.as_deref()
    }

    /// Caps interpreter steps per [`Browser::run_until_idle`] /
    /// script execution (guards against runaway `while` loops in tests).
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps = max;
    }

    pub(crate) fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// Interpreter steps consumed by the most recent script execution
    /// (reset at the start of each script run / event-loop drain).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.core.steps
    }

    /// Read access to the app state.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Mutable access to the app state (embedders use this to preload
    /// canvas data before "the user clicks").
    pub fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Parses an HTML document, replaces the current DOM with it, and runs
    /// its `<script>` blocks. Loading an app and restoring a snapshot are
    /// the *same operation* — a snapshot is just another web app.
    ///
    /// # Errors
    ///
    /// Returns [`WebError::Html`] / parse / runtime errors from the
    /// document or its scripts.
    pub fn load_html(&mut self, html: &str) -> Result<(), WebError> {
        let parsed = crate::html::parse_document(html)?;
        self.core.doc = parsed.document;
        self.core.steps = 0;
        if let Some(m) = self.meter.as_mut() {
            m.begin_segment();
        }
        for script in &parsed.scripts {
            self.exec_script(script)?;
        }
        Ok(())
    }

    /// Runs a MiniJS script in the current document (top-level scope).
    ///
    /// # Errors
    ///
    /// Returns lex/parse/runtime errors.
    pub fn exec_script(&mut self, src: &str) -> Result<(), WebError> {
        let program = crate::parser::parse_program(src)?;
        self.exec_top_level(&program)
    }

    /// Pushes an event onto the queue (does not run handlers; call
    /// [`Browser::run_until_idle`]).
    ///
    /// # Errors
    ///
    /// Returns [`WebError::Dom`] when no element has id `target_id`.
    pub fn dispatch(&mut self, target_id: &str, event: &str) -> Result<(), WebError> {
        let target = self
            .core
            .doc
            .get_element_by_id(target_id)
            .ok_or_else(|| WebError::Dom(format!("no element with id {target_id:?}")))?;
        self.core.queue.push_back(PendingEvent {
            target,
            event: event.to_string(),
        });
        Ok(())
    }

    /// Simulates a user click on the element with id `target_id`.
    ///
    /// # Errors
    ///
    /// Returns [`WebError::Dom`] when the element does not exist.
    pub fn click(&mut self, target_id: &str) -> Result<(), WebError> {
        self.dispatch(target_id, "click")
    }

    /// Drains the event queue, running listeners in registration order,
    /// until the queue is empty or the offload trigger is reached.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from handlers.
    pub fn run_until_idle(&mut self) -> Result<RunOutcome, WebError> {
        let mut events = 0usize;
        self.core.steps = 0;
        if let Some(m) = self.meter.as_mut() {
            m.begin_segment();
        }
        loop {
            let Some(front) = self.core.queue.front().cloned() else {
                return Ok(RunOutcome::Idle { events });
            };
            if let Some(trigger) = &self.offload_trigger {
                if front.event == *trigger {
                    let target_id = self
                        .core
                        .doc
                        .attr(front.target, "id")?
                        .unwrap_or("")
                        .to_string();
                    return Ok(RunOutcome::OffloadPoint {
                        target_id,
                        event: front.event,
                    });
                }
            }
            self.core.queue.pop_front();
            let handlers: Vec<String> = self
                .core
                .listeners
                .iter()
                .filter(|l| l.target == front.target && l.event == front.event)
                .map(|l| l.handler.clone())
                .collect();
            for handler in handlers {
                self.call_function_by_name(&handler, &[])?;
            }
            events += 1;
        }
    }

    /// Text content of the element with the given id — how tests and
    /// examples read "the screen".
    ///
    /// # Errors
    ///
    /// Returns [`WebError::Dom`] when the element does not exist.
    pub fn element_text(&self, id: &str) -> Result<&str, WebError> {
        let node = self
            .core
            .doc
            .get_element_by_id(id)
            .ok_or_else(|| WebError::Dom(format!("no element with id {id:?}")))?;
        self.core.doc.text(node)
    }

    /// Reads a global variable (`undefined` when absent).
    pub fn global(&self, name: &str) -> JsValue {
        self.core
            .globals
            .get_str(name)
            .cloned()
            .unwrap_or(JsValue::Undefined)
    }

    /// Attaches image pixel data to a canvas element — the embedder-side
    /// equivalent of the user loading an image into the app.
    ///
    /// # Errors
    ///
    /// Returns [`WebError::Dom`] when the element does not exist.
    pub fn set_canvas_image(&mut self, id: &str, data: Vec<f32>) -> Result<(), WebError> {
        let node = self
            .core
            .doc
            .get_element_by_id(id)
            .ok_or_else(|| WebError::Dom(format!("no element with id {id:?}")))?;
        self.core.doc.set_image_data(node, Some(data))
    }

    /// Lines printed via `console.log` so far.
    pub fn console(&self) -> &[String] {
        &self.core.console
    }
}
