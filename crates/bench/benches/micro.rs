//! Criterion micro-benchmarks for the snapedge substrates: snapshot
//! capture/restore scaling, CNN kernels, tensor text serialization, and a
//! whole tiny offload round-trip.
//!
//! ```sh
//! cargo bench -p snapedge-bench
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapedge_core::{run_scenario, ScenarioConfig, Strategy};
use snapedge_tensor::{ops, serialize, Tensor};
use snapedge_webapp::{Browser, SnapshotOptions};

fn browser_with_heap(objects: usize, floats: usize) -> Browser {
    let mut b = Browser::new();
    let mut script = String::from("var all = [];\n");
    for i in 0..objects {
        script.push_str(&format!(
            "all.push({{id: {i}, name: \"obj{i}\", vals: [{i}, {}, {}]}});\n",
            i * 2,
            i * 3
        ));
    }
    if floats > 0 {
        script.push_str("var feats = new Float32Array([");
        for i in 0..floats {
            if i > 0 {
                script.push(',');
            }
            script.push_str(&format!("{}", (i as f64 * 0.37).sin()));
        }
        script.push_str("]);\n");
    }
    b.exec_script(&script).expect("bench script runs");
    b
}

fn bench_snapshot_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_capture");
    for objects in [10usize, 100, 1000] {
        let mut browser = browser_with_heap(objects, 0);
        group.bench_with_input(BenchmarkId::new("objects", objects), &objects, |b, _| {
            b.iter(|| {
                browser
                    .capture_snapshot(&SnapshotOptions::default())
                    .unwrap()
                    .size_bytes()
            })
        });
    }
    for floats in [1_000usize, 10_000] {
        let mut browser = browser_with_heap(10, floats);
        group.bench_with_input(
            BenchmarkId::new("feature_floats", floats),
            &floats,
            |b, _| {
                b.iter(|| {
                    browser
                        .capture_snapshot(&SnapshotOptions::default())
                        .unwrap()
                        .size_bytes()
                })
            },
        );
    }
    group.finish();
}

fn bench_snapshot_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_restore");
    for objects in [100usize, 1000] {
        let mut browser = browser_with_heap(objects, 1000);
        let snapshot = browser
            .capture_snapshot(&SnapshotOptions::default())
            .unwrap();
        group.bench_with_input(BenchmarkId::new("objects", objects), &objects, |b, _| {
            b.iter(|| {
                let mut fresh = Browser::new();
                fresh.load_html(snapshot.html()).unwrap();
                fresh.core().heap.len()
            })
        });
    }
    group.finish();
}

fn bench_cnn_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnn_kernels");
    let input = Tensor::from_fn(&[16, 32, 32], |i| ((i % 97) as f32) / 97.0).unwrap();
    let weights = Tensor::from_fn(&[16, 16, 3, 3], |i| ((i % 13) as f32 - 6.0) / 13.0).unwrap();
    let bias = Tensor::zeros(&[16]).unwrap();
    group.bench_function("conv2d_naive_16x32x32_3x3", |b| {
        b.iter(|| ops::conv2d(&input, &weights, &bias, 1, 1).unwrap().len())
    });
    group.bench_function("conv2d_im2col_16x32x32_3x3", |b| {
        b.iter(|| {
            ops::conv2d_im2col(&input, &weights, &bias, 1, 1, 1)
                .unwrap()
                .len()
        })
    });
    group.bench_function("maxpool_3x3_s2", |b| {
        b.iter(|| {
            ops::pool2d(&input, ops::PoolKind::Max, 3, 2, 0)
                .unwrap()
                .len()
        })
    });
    let fc_in = Tensor::from_fn(&[4096], |i| (i as f32).cos()).unwrap();
    let fc_w = Tensor::from_fn(&[256, 4096], |i| ((i % 31) as f32 - 15.0) / 31.0).unwrap();
    let fc_b = Tensor::zeros(&[256]).unwrap();
    group.bench_function("fc_4096_to_256", |b| {
        b.iter(|| ops::fully_connected(&fc_in, &fc_w, &fc_b).unwrap().len())
    });
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_serialization");
    let t = Tensor::from_fn(&[50_000], |i| ((i as f32) * 0.137).sin() * 3.3).unwrap();
    group.bench_function("js_text_50k_floats", |b| {
        b.iter(|| serialize::to_js_text(&t).len())
    });
    group.bench_function("binary_50k_floats", |b| {
        b.iter(|| serialize::to_binary(&t).len())
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("tiny_offload_after_ack", |b| {
        b.iter(|| {
            run_scenario(&ScenarioConfig::tiny(Strategy::OffloadAfterAck))
                .unwrap()
                .total
        })
    });
    group.bench_function("tiny_partial_1st_pool", |b| {
        b.iter(|| {
            run_scenario(&ScenarioConfig::tiny(Strategy::Partial {
                cut: "1st_pool".to_string(),
            }))
            .unwrap()
            .total
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_capture,
    bench_snapshot_restore,
    bench_cnn_kernels,
    bench_serialization,
    bench_end_to_end
);
criterion_main!(benches);
