//! A deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Min-heap of `(time, event)` with FIFO tie-breaking — the scheduling core
/// of the offload simulation (model upload completion, ACK arrival,
/// snapshot arrivals all become events).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Duration,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Schedules `event` at virtual time `time`.
    pub fn push(&mut self, time: Duration, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event (insertion order breaks
    /// ties).
    pub fn pop(&mut self) -> Option<(Duration, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Duration> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Duration::from_secs(3), "c");
        q.push(Duration::from_secs(1), "a");
        q.push(Duration::from_secs(2), "b");
        assert_eq!(q.pop(), Some((Duration::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((Duration::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((Duration::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Duration::from_secs(1);
        q.push(t, "first");
        q.push(t, "second");
        q.push(t, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Duration::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(Duration::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
