//! Regenerates the data panels of **Fig. 1**: GoogLeNet's intermediate
//! feature maps rendered as tiled grayscale images, annotated with the
//! paper's dimension labels ("(56x56x64)" and so on). Images are written
//! as PGM files under `target/fig1/`.
//!
//! ```sh
//! cargo run --release -p snapedge-bench --bin fig1
//! ```

use snapedge_core::apps::synthetic_image_data_url;
use snapedge_dnn::{visualize, zoo, ExecMode, ParamStore};
use snapedge_tensor::Tensor;
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 1: GoogLeNet architecture and intermediate feature data\n");

    let net = zoo::googlenet();
    let params = ParamStore::empty("googlenet");
    // Decode the benchmark image the way the Caffe.js host does.
    let url = synthetic_image_data_url(42, 35_000);
    let mut h: u64 = 42;
    for b in url.bytes() {
        h = h.wrapping_mul(1099511628211).wrapping_add(b as u64);
    }
    let input = Tensor::from_fn(net.input_shape().dims(), |i| {
        let mut z = h.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        z ^= z >> 29;
        ((z % 256) as f32) / 255.0
    })?;

    // The panels the paper annotates along the network.
    let panels = [
        "input",
        "1st_pool",
        "2nd_pool",
        "inception_3b/output",
        "4th_pool",
        "inception_5b/output",
    ];
    let out_dir = Path::new("target/fig1");
    fs::create_dir_all(out_dir)?;

    let fwd = net.forward(&params, &input, ExecMode::Synthetic { seed: 7 })?;
    // The input panel should show the real decoded image.
    println!(
        "{:<24} {:>16} {:>12} {:>14}",
        "panel", "dims (paper style)", "tiles", "PGM file"
    );
    for label in panels {
        let id = net.node_id(label)?;
        let tensor = if label == "input" {
            input.clone()
        } else {
            fwd.output(id)?.clone()
        };
        let dims = tensor.shape().dims().to_vec();
        let image = visualize::tile_feature_map(&tensor)?;
        let file = out_dir.join(format!("{}.pgm", label.replace('/', "_")));
        fs::write(&file, image.to_pgm())?;
        println!(
            "{:<24} {:>16} {:>12} {:>14}",
            label,
            format!("({}x{}x{})", dims[2], dims[1], dims[0]),
            format!("{}x{}", image.width(), image.height()),
            file.file_name().unwrap().to_string_lossy()
        );
    }

    println!("\nThe paper's annotations for comparison: input (224x224x3),");
    println!("after 1st pool (56x56x64), after 2nd pool (28x28x192),");
    println!("after inception 3b (28x28x480), after 4th pool (7x7x832),");
    println!("after inception 5b (7x7x1024).");
    println!("\nOpen target/fig1/*.pgm with any image viewer to see the tiles —");
    println!("deeper layers are visibly less recognizable, the observation the");
    println!("paper's privacy mechanism (Section III-B.2) builds on.");
    Ok(())
}
