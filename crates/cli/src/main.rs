//! `snapedge` — command-line driver for the offloading simulator.
//!
//! ```text
//! snapedge run     --model googlenet --strategy after-ack [--mbps 30] [--cut 1st_pool]
//! snapedge sweep   --model agenet                 # Fig. 8 partition sweep
//! snapedge session --model googlenet --rounds 5   # repeated offloads w/ deltas
//! snapedge fleet   --clients 10000 --arrival poisson:500 --duration 60
//! snapedge install --model agenet                 # VM-synthesis cost
//! snapedge models                                 # list zoo models & cuts
//! snapedge analyze --all-apps true                # static snapshot verification
//! ```

use snapedge_analyze::{
    analyze_html, analyze_script, effect_summary, effect_summary_html, AnalysisOptions,
    AnalysisReport, EffectOptions, EffectSummary,
};
use snapedge_core::{
    apps, parse_servers, run_scenario, vm_install, ArrivalProcess, Engine, FleetReport,
    MeterLimits, OffloadSession, RetryPolicy, ScenarioConfig, ServerSpec, SessionConfig, Strategy,
    Workload,
};
use snapedge_dnn::{zoo, ModelBundle};
use snapedge_net::{FaultPlan, LinkConfig};
use snapedge_vmsynth::SynthesisConfig;
use snapedge_webapp::{HostEffect, SnapshotOptions};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        Args::from_vec(std::env::args().skip(1).collect())
    }

    fn from_vec(raw: Vec<String>) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn model(&self) -> String {
        self.flag("model").unwrap_or("googlenet").to_string()
    }

    fn mbps(&self) -> Result<f64, String> {
        match self.flag("mbps") {
            Some(v) => v.parse().map_err(|e| format!("bad --mbps: {e}")),
            None => Ok(30.0),
        }
    }
}

const USAGE: &str = "usage:
  snapedge run     --model <name> --strategy <client|server|before-ack|after-ack|partial>
                   [--cut <label>] [--mbps <rate>] [--timeline true] [--trace <file.jsonl>]
                   [--fault-plan <spec>] [--retry <spec>] [--servers <spec>]
                   [--predict true] [--meter <spec>] [--effects true]
  snapedge sweep   --model <name> [--mbps <rate>]
  snapedge session --model <name> [--rounds <n>] [--no-deltas true]
                   [--fault-plan <spec>] [--retry <spec>] [--servers <spec>]
                   [--predict true] [--meter <spec>] [--effects true]
  snapedge fleet   --model <name> [--clients <n>] [--arrival <spec>]
                   [--duration <s>] [--rounds <n>] [--servers <spec>]
                   [--mbps <rate>] [--seed <n>] [--retry <spec>] [--real true]
                   [--meter <spec>] [--balance true] [--fair-share true]
                   [--batch-window <s>]
  snapedge install --model <name> [--mbps <rate>]
  snapedge models
  snapedge analyze [--all-apps true | --model <name> [--cut <label>]]
                   [--html <file> [--report <out.html>]] [--effects true]
                   [--mode <app|snapshot|delta>] [--hosts <a,b>]

  --fault-plan injects link faults at virtual times, e.g.
      'down@2..5,degrade@7..9x0.25,corrupt@10..11'
    entries hit both links unless prefixed 'up:'/'down:' (or 'both:'), e.g.
      'up:down@2..5,down:corrupt@1..2'
  --retry enables recovery from transient faults:
      'default' or 'attempts=<n>,deadline=<s>,backoff=<s>,backoff-max=<s>'
  --servers declares an ordered edge fleet for estimator-driven failover:
      'edge-a;edge-b,mbps=12,latency=0.005;edge-c,up=down@2..5+corrupt@7..8'
    ';'-separated entries, each 'name[,key=value...]' inheriting the primary
    link; keys: mbps, bps, latency (s), overhead (B), loss, and fault plans
    up/down/faults ('+' separates windows). Carries its own fault plans, so
    it cannot be combined with --fault-plan.
  --predict true consults the link-health predictor before each migration:
    when the measured fault rate and bandwidth trend say the offload loses
    after its expected retry backoff, the inference completes locally
    before any retry budget burns. Off by default (bit-identical replay).
  --meter caps per-tenant execution on edge servers:
      'ops=<n>,heap=<cells>,str=<chars>,depth=<frames>,slice=<ms>'
    any subset of keys; exceeding a cap kills the tenant's snapshot on
    that server (fatal-for-this-server: no retries burn, the round fails
    over to the next server or completes locally). Per-server 'meter='
    keys in --servers override the fleet-wide spec ('+' joins nested
    keys). Off by default (bit-identical replay).
  --effects true runs the static effect pass before any state ships:
    per-function write sets prune delta capture down to statically
    writable globals (with a bit-identical fallback to the full walk
    whenever a write escapes attribution), apps that reach
    clock/random/IO hosts complete locally instead of shipping
    unreplayable state, and rounds whose static op floor already
    exceeds the meter budget are refused before any bytes burn. With
    'snapedge analyze' it prints the per-function effect lattice and
    cost bounds. Off by default (bit-identical replay).
  --arrival shapes fleet traffic (snapedge fleet):
      'closed[:think_s]'               closed loop, per-client think time
      'poisson:rate_hz'                open-loop Poisson, fleet-wide rate
      'diurnal:base_hz:peak_hz:period_s'  raised-cosine rate curve
    Open-loop arrivals landing on a busy client queue client-side. By
    default the fleet runs the calibrated analytic workload (tens of
    thousands of clients in milliseconds); --real true builds one real
    browser session per client instead.
  --balance true prices each server's predicted queueing delay into
    server selection and admission (snapedge fleet): modeled clients
    pick the least-predicted-sojourn server instead of rotating, real
    sessions add the predicted wait to failover ranking and degrade a
    round to local when the queue erases the offload win. Off by
    default (bit-identical replay).
  --fair-share true grants each server CPU by deficit round robin over
    tenants instead of arrival order, so one chatty client cannot
    starve co-located clients. --batch-window <s> opportunistically
    batches admissions co-queued within the window behind a busy CPU.
    Both off by default (bit-identical replay).";

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<(), String> {
    let args = Args::parse()?;
    match args.positional.first().map(String::as_str) {
        Some("run") => cmd_run(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("session") => cmd_session(&args),
        Some("fleet") => cmd_fleet(&args),
        Some("install") => cmd_install(&args),
        Some("models") => cmd_models(),
        Some("analyze") => cmd_analyze(&args),
        _ => Err("missing or unknown subcommand".to_string()),
    }
}

fn parse_strategy(args: &Args) -> Result<Strategy, String> {
    match args.flag("strategy").unwrap_or("after-ack") {
        "client" => Ok(Strategy::ClientOnly),
        "server" => Ok(Strategy::ServerOnly),
        "before-ack" => Ok(Strategy::OffloadBeforeAck),
        "after-ack" => Ok(Strategy::OffloadAfterAck),
        "partial" => Ok(Strategy::Partial {
            cut: args.flag("cut").unwrap_or("1st_pool").to_string(),
        }),
        other => Err(format!("unknown strategy {other:?}")),
    }
}

/// Splits a `--fault-plan` spec into per-link plans. Entries apply to both
/// links unless prefixed `up:` / `down:` (or the explicit `both:`).
fn parse_fault_flags(args: &Args) -> Result<(FaultPlan, FaultPlan), String> {
    let Some(spec) = args.flag("fault-plan") else {
        return Ok((FaultPlan::none(), FaultPlan::none()));
    };
    let mut up = Vec::new();
    let mut down = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        if let Some(rest) = entry.strip_prefix("up:") {
            up.push(rest);
        } else if let Some(rest) = entry.strip_prefix("down:") {
            down.push(rest);
        } else {
            let rest = entry.strip_prefix("both:").unwrap_or(entry);
            up.push(rest);
            down.push(rest);
        }
    }
    let build = |entries: &[&str]| {
        FaultPlan::parse(&entries.join(",")).map_err(|e| format!("bad --fault-plan: {e}"))
    };
    Ok((build(&up)?, build(&down)?))
}

/// Applies the fleet flags to a config's server list. `--servers`
/// replaces the whole fleet (each entry inherits the primary's device and
/// link as a template) and carries per-server fault plans through its
/// `up=`/`down=`/`faults=` keys, so combining it with `--fault-plan` is
/// rejected as ambiguous; without it, `--fault-plan` lands on the
/// primary's links as before.
fn apply_fleet_flags(args: &Args, servers: &mut Vec<ServerSpec>) -> Result<(), String> {
    match args.flag("servers") {
        Some(spec) => {
            if args.flag("fault-plan").is_some() {
                return Err(
                    "--servers carries per-server fault plans (up=/down=/faults=); \
                     drop --fault-plan"
                        .to_string(),
                );
            }
            let template = servers
                .first()
                .cloned()
                .ok_or_else(|| "config has no primary server".to_string())?;
            *servers = parse_servers(spec, &template).map_err(|e| format!("bad --servers: {e}"))?;
        }
        None => {
            let (up, down) = parse_fault_flags(args)?;
            if let Some(primary) = servers.first_mut() {
                primary.up_faults = up;
                primary.down_faults = down;
            }
        }
    }
    Ok(())
}

fn parse_predict_flag(args: &Args) -> Result<bool, String> {
    match args.flag("predict") {
        None => Ok(false),
        Some("true") | Some("on") => Ok(true),
        Some("false") | Some("off") => Ok(false),
        Some(other) => Err(format!("bad --predict {other:?} (use true/false)")),
    }
}

fn parse_effects_flag(args: &Args) -> Result<bool, String> {
    match args.flag("effects") {
        None => Ok(false),
        Some("true") | Some("on") => Ok(true),
        Some("false") | Some("off") => Ok(false),
        Some(other) => Err(format!("bad --effects {other:?} (use true/false)")),
    }
}

fn parse_balance_flag(args: &Args) -> Result<bool, String> {
    match args.flag("balance") {
        None => Ok(false),
        Some("true") | Some("on") => Ok(true),
        Some("false") | Some("off") => Ok(false),
        Some(other) => Err(format!("bad --balance {other:?} (use true/false)")),
    }
}

fn parse_fair_share_flag(args: &Args) -> Result<bool, String> {
    match args.flag("fair-share") {
        None => Ok(false),
        Some("true") | Some("on") => Ok(true),
        Some("false") | Some("off") => Ok(false),
        Some(other) => Err(format!("bad --fair-share {other:?} (use true/false)")),
    }
}

fn parse_batch_window_flag(args: &Args) -> Result<Option<Duration>, String> {
    match args.flag("batch-window") {
        None => Ok(None),
        Some(v) => {
            let secs: f64 = v.parse().map_err(|e| format!("bad --batch-window: {e}"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(format!(
                    "bad --batch-window {v:?} (need non-negative seconds)"
                ));
            }
            Ok(Some(Duration::from_secs_f64(secs)))
        }
    }
}

fn parse_retry_flag(args: &Args) -> Result<Option<RetryPolicy>, String> {
    match args.flag("retry") {
        None => Ok(None),
        Some("default") | Some("on") => Ok(Some(RetryPolicy::default())),
        Some(spec) => RetryPolicy::parse(spec)
            .map(Some)
            .map_err(|e| format!("bad --retry: {e}")),
    }
}

fn parse_meter_flag(args: &Args) -> Result<Option<MeterLimits>, String> {
    match args.flag("meter") {
        None => Ok(None),
        Some(spec) => MeterLimits::parse(spec)
            .map(Some)
            .map_err(|e| format!("bad --meter: {e}")),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let mut cfg = ScenarioConfig::paper(&args.model(), parse_strategy(args)?);
    cfg.primary_mut().link = LinkConfig::mbps(args.mbps()?);
    apply_fleet_flags(args, &mut cfg.servers)?;
    cfg.retry = parse_retry_flag(args)?;
    cfg.meter = parse_meter_flag(args)?;
    cfg.predict = parse_predict_flag(args)?;
    cfg.snapshot.effects = parse_effects_flag(args)?;
    let report = run_scenario(&cfg).map_err(|e| e.to_string())?;
    println!("model:      {}", report.model);
    println!("strategy:   {:?}", report.strategy);
    println!("result:     {}", report.result);
    if let Some(name) = &report.server {
        let handoffs = report.handoff_count();
        if handoffs > 0 {
            println!("server:     {name} (after {handoffs} handoff(s))");
        } else if cfg.servers.len() > 1 {
            println!("server:     {name}");
        }
    }
    println!("total:      {:.3}s", report.total.as_secs_f64());
    let b = report.breakdown;
    println!(
        "breakdown:  exec(C) {:.3}s | capture(C) {:.3}s | up {:.3}s | restore(S) {:.3}s",
        b.exec_client.as_secs_f64(),
        b.capture_client.as_secs_f64(),
        b.transfer_up.as_secs_f64(),
        b.restore_server.as_secs_f64()
    );
    println!(
        "            exec(S) {:.3}s | capture(S) {:.3}s | down {:.3}s | restore(C) {:.3}s",
        b.exec_server.as_secs_f64(),
        b.capture_server.as_secs_f64(),
        b.transfer_down.as_secs_f64(),
        b.restore_client.as_secs_f64()
    );
    if let Some(ack) = report.ack_at {
        println!(
            "pre-send:   {} bytes, ACK at {:.3}s; snapshots {} B up / {} B down",
            report.model_upload_bytes,
            ack.as_secs_f64(),
            report.snapshot_up_bytes,
            report.snapshot_down_bytes
        );
    }
    if let Some(decision) = &report.prediction {
        if report.proactive {
            println!(
                "predict:    {} (completed locally before any retry)",
                decision.label()
            );
        } else {
            println!("predict:    {}", decision.label());
        }
    }
    if report.fell_back {
        println!("fallback:   offload gave up; the inference completed locally");
    }
    let retries = report.retry_count();
    if retries > 0 || report.fault_time() > Duration::ZERO {
        println!(
            "resilience: {retries} retries | backoff {:.3}s | fault time {:.3}s",
            report.backoff_time().as_secs_f64(),
            report.fault_time().as_secs_f64()
        );
    }
    if args.flag("timeline").is_some() {
        println!("\ntimeline (C=client, N=network, S=server):");
        let spans = snapedge_core::timeline::spans(&report);
        print!("{}", snapedge_core::timeline::render_ascii(&spans, 50));
    }
    if let Some(path) = args.flag("trace") {
        std::fs::write(path, report.trace.to_jsonl())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "trace:      {} events -> {path}",
            report.trace.events().len()
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let model = args.model();
    let mbps = args.mbps()?;
    println!("partition sweep for {model} at {mbps:.0} Mbps:");
    println!("{:<14} {:>10} {:>14}", "cut", "total(s)", "snapshot(MiB)");
    for cut in zoo::fig8_cuts(&model) {
        let strategy = if cut == "input" {
            Strategy::OffloadAfterAck
        } else {
            Strategy::Partial {
                cut: cut.to_string(),
            }
        };
        let mut cfg = ScenarioConfig::paper(&model, strategy);
        cfg.primary_mut().link = LinkConfig::mbps(mbps);
        let report = run_scenario(&cfg).map_err(|e| e.to_string())?;
        println!(
            "{:<14} {:>10.2} {:>14.2}",
            cut,
            report.total.as_secs_f64(),
            report.snapshot_up_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    Ok(())
}

fn cmd_session(args: &Args) -> Result<(), String> {
    let rounds: u64 = match args.flag("rounds") {
        Some(v) => v.parse().map_err(|e| format!("bad --rounds: {e}"))?,
        None => 3,
    };
    let mut cfg = SessionConfig::paper(&args.model());
    if args.flag("no-deltas").is_some() {
        cfg.use_deltas = false;
    }
    apply_fleet_flags(args, &mut cfg.servers)?;
    cfg.retry = parse_retry_flag(args)?;
    cfg.meter = parse_meter_flag(args)?;
    let predict = parse_predict_flag(args)?;
    cfg.predict = predict;
    cfg.snapshot.effects = parse_effects_flag(args)?;
    let mut session = OffloadSession::new(cfg).map_err(|e| e.to_string())?;
    if predict {
        println!(
            "{:>6} {:>8} {:>12} {:>12} {:>10} {:>15} {:>14}",
            "round", "mode", "up bytes", "down bytes", "total", "server", "predict"
        );
    } else {
        println!(
            "{:>6} {:>8} {:>12} {:>12} {:>10} {:>15}",
            "round", "mode", "up bytes", "down bytes", "total", "server"
        );
    }
    for round in 1..=rounds {
        let r = session.infer(round).map_err(|e| e.to_string())?;
        let mode = if r.proactive {
            "predict"
        } else if r.fell_back {
            "local"
        } else if r.delta_up {
            "delta"
        } else {
            "full"
        };
        if predict {
            let predicted = r
                .prediction
                .as_ref()
                .map(|d| d.label())
                .unwrap_or_else(|| "-".to_string());
            println!(
                "{:>6} {:>8} {:>12} {:>12} {:>9.2}s {:>15} {:>14}   {}",
                r.round,
                mode,
                r.up_bytes,
                r.down_bytes,
                r.total.as_secs_f64(),
                r.server,
                predicted,
                r.result
            );
        } else {
            println!(
                "{:>6} {:>8} {:>12} {:>12} {:>9.2}s {:>15}   {}",
                r.round,
                mode,
                r.up_bytes,
                r.down_bytes,
                r.total.as_secs_f64(),
                r.server,
                r.result
            );
        }
    }
    Ok(())
}

/// Parses an `--arrival` spec: `closed[:think_s]`, `poisson:rate_hz`, or
/// `diurnal:base_hz:peak_hz:period_s`.
fn parse_arrival(spec: &str) -> Result<ArrivalProcess, String> {
    let mut parts = spec.split(':');
    let shape = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let num = |s: &str, what: &str| -> Result<f64, String> {
        s.parse::<f64>()
            .map_err(|e| format!("bad --arrival {what} {s:?}: {e}"))
    };
    match (shape, rest.as_slice()) {
        ("closed", []) => Ok(ArrivalProcess::ClosedLoop {
            think: Duration::from_secs(2),
        }),
        ("closed", [think]) => Ok(ArrivalProcess::ClosedLoop {
            think: Duration::from_secs_f64(num(think, "think time")?),
        }),
        ("poisson", [rate]) => Ok(ArrivalProcess::Poisson {
            rate_hz: num(rate, "rate")?,
        }),
        ("diurnal", [base, peak, period]) => Ok(ArrivalProcess::Diurnal {
            base_hz: num(base, "base rate")?,
            peak_hz: num(peak, "peak rate")?,
            period: Duration::from_secs_f64(num(period, "period")?),
        }),
        _ => Err(format!(
            "bad --arrival {spec:?} (use closed[:think_s], poisson:rate_hz, \
             or diurnal:base_hz:peak_hz:period_s)"
        )),
    }
}

/// Shapes an engine from the shared fleet flags and runs it to completion.
fn run_fleet<W: Workload>(
    mut engine: Engine<W>,
    arrival: ArrivalProcess,
    duration: Duration,
    max_rounds: Option<usize>,
) -> Result<FleetReport, String> {
    engine = engine.arrival(arrival).duration(duration);
    if let Some(cap) = max_rounds {
        engine = engine.max_rounds(cap);
    }
    engine.run().map_err(|e| e.to_string())
}

fn cmd_fleet(args: &Args) -> Result<(), String> {
    let clients: usize = match args.flag("clients") {
        Some(v) => v.parse().map_err(|e| format!("bad --clients: {e}"))?,
        None => 100,
    };
    let arrival = parse_arrival(args.flag("arrival").unwrap_or("closed"))?;
    let duration = Duration::from_secs_f64(match args.flag("duration") {
        Some(v) => v.parse().map_err(|e| format!("bad --duration: {e}"))?,
        None => 60.0,
    });
    let max_rounds: Option<usize> = match args.flag("rounds") {
        Some(v) => Some(v.parse().map_err(|e| format!("bad --rounds: {e}"))?),
        None => None,
    };
    let real = match args.flag("real") {
        None | Some("false") | Some("off") => false,
        Some("true") | Some("on") => true,
        Some(other) => return Err(format!("bad --real {other:?} (use true/false)")),
    };
    let mut cfg = SessionConfig::paper(&args.model());
    cfg.primary_mut().link = LinkConfig::mbps(args.mbps()?);
    apply_fleet_flags(args, &mut cfg.servers)?;
    cfg.retry = parse_retry_flag(args)?;
    cfg.meter = parse_meter_flag(args)?;
    cfg.predict = parse_predict_flag(args)?;
    cfg.balance = parse_balance_flag(args)?;
    cfg.fair_share = parse_fair_share_flag(args)?;
    cfg.batch_window = parse_batch_window_flag(args)?;
    let balancing = cfg.balance || cfg.fair_share || cfg.batch_window.is_some();
    if let Some(seed) = args.flag("seed") {
        cfg.seed = seed.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    println!(
        "fleet:      {} server(s), {} client(s), arrival {:?}, horizon {:.0}s, {} workload",
        cfg.servers.len(),
        clients,
        arrival,
        duration.as_secs_f64(),
        if real { "real-session" } else { "modeled" }
    );
    let report = if real {
        let engine = Engine::sessions(cfg, clients).map_err(|e| e.to_string())?;
        run_fleet(engine, arrival, duration, max_rounds)?
    } else {
        let engine = Engine::modeled(cfg, clients).map_err(|e| e.to_string())?;
        run_fleet(engine, arrival, duration, max_rounds)?
    };
    println!(
        "completed:  {} round(s) ({} fallback(s)) | makespan {:.3}s | throughput {:.1}/s",
        report.completed,
        report.fallbacks,
        report.makespan.as_secs_f64(),
        report.throughput_rps
    );
    println!(
        "latency:    p50 {:.3}s | p95 {:.3}s | p99 {:.3}s (mean {:.3}s, max {:.3}s)",
        report.latency.p50.as_secs_f64(),
        report.latency.p95.as_secs_f64(),
        report.latency.p99.as_secs_f64(),
        report.latency.mean.as_secs_f64(),
        report.latency.max.as_secs_f64()
    );
    println!(
        "queue wait: p50 {:.3}s | p95 {:.3}s | p99 {:.3}s (max {:.3}s)",
        report.queue_wait.p50.as_secs_f64(),
        report.queue_wait.p95.as_secs_f64(),
        report.queue_wait.p99.as_secs_f64(),
        report.queue_wait.max.as_secs_f64()
    );
    if report.total_ops > 0 || report.peak_heap > 0 {
        println!(
            "meter:      {} op(s) charged | peak heap {} cell(s)",
            report.total_ops, report.peak_heap
        );
    }
    if balancing {
        let rejects: usize = report.servers.iter().map(|s| s.rejects).sum();
        println!(
            "balance:    fairness {:.3} | {} admission reject(s) | max batch {}",
            report.fairness, rejects, report.max_batch
        );
    }
    for server in &report.servers {
        if balancing {
            println!(
                "server:     {:<16} {:>8} round(s) | busy {:.3}s | utilization {:.1}% | {} admit(s), {} reject(s), {} batch(es)",
                server.name,
                server.rounds,
                server.busy.as_secs_f64(),
                server.utilization * 100.0,
                server.admits,
                server.rejects,
                server.batches
            );
        } else {
            println!(
                "server:     {:<16} {:>8} round(s) | busy {:.3}s | utilization {:.1}%",
                server.name,
                server.rounds,
                server.busy.as_secs_f64(),
                server.utilization * 100.0
            );
        }
    }
    Ok(())
}

fn cmd_install(args: &Args) -> Result<(), String> {
    let model = args.model();
    let net = zoo::by_name(&model).map_err(|e| e.to_string())?;
    let bytes = ModelBundle::from_network(&net).total_bytes();
    let report = vm_install(
        &model,
        bytes,
        &LinkConfig::mbps(args.mbps()?),
        &SynthesisConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "overlay: {:.1} MiB (model {:.1} MiB inside)",
        report.overlay_bytes as f64 / (1024.0 * 1024.0),
        bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "synthesis: upload {:.2}s + apply {:.2}s = {:.2}s",
        report.upload.as_secs_f64(),
        report.apply.as_secs_f64(),
        report.total().as_secs_f64()
    );
    Ok(())
}

fn cmd_models() -> Result<(), String> {
    for name in [
        "googlenet",
        "agenet",
        "gendernet",
        "tiny_cnn",
        "tiny_inception",
    ] {
        let net = zoo::by_name(name).map_err(|e| e.to_string())?;
        let profile = net.profile();
        println!(
            "{name}: {} layers, {:.1} MiB params, {:.2} GFLOPs",
            net.node_count(),
            profile.total_param_bytes() as f64 / (1024.0 * 1024.0),
            profile.total_flops() as f64 / 1e9
        );
        let cuts: Vec<String> = net.cut_points().iter().map(|c| c.label.clone()).collect();
        println!("  cuts: {}", cuts.join(", "));
    }
    Ok(())
}

/// Parses `--mode` / `--hosts` into analyzer options. Apps talk to the
/// Caffe.js `model` host, so it is in the allowlist by default.
fn parse_analysis_options(args: &Args) -> Result<AnalysisOptions, String> {
    let opts = match args.flag("mode").unwrap_or("app") {
        "app" => AnalysisOptions::app(),
        "snapshot" => AnalysisOptions::snapshot(),
        "delta" => AnalysisOptions::delta(Vec::new()),
        other => return Err(format!("unknown --mode {other:?}")),
    };
    let hosts = match args.flag("hosts") {
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|h| !h.is_empty())
            .map(str::to_string)
            .collect(),
        None => vec!["model".to_string()],
    };
    Ok(opts.with_hosts(hosts))
}

/// Builds the effect-pass host surface from `--hosts`. The CLI has no way
/// to register a live host object, so every allowlisted name is treated as
/// deterministic — sessions derive the real surface (with per-host effect
/// tags) from the browser they run in.
fn parse_effect_options(args: &Args) -> Result<EffectOptions, String> {
    let hosts = parse_analysis_options(args)?.hosts;
    let pairs = hosts
        .into_iter()
        .map(|h| (h, HostEffect::Deterministic))
        .collect();
    Ok(EffectOptions::from_host_effects(pairs))
}

/// Escapes untrusted text for embedding in HTML markup. Guest apps are
/// untrusted input (PR 7 threat model): a hostile identifier or parse-error
/// excerpt like `x<script>` must render as text, never as live markup.
fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders the `--report` markup for one analyzed file. Every string that
/// can carry guest source — the target path, diagnostic messages and
/// identifiers, effect-summary rows — goes through [`escape_html`].
fn render_html_report(
    target: &str,
    report: &AnalysisReport,
    effects: Option<&EffectSummary>,
) -> String {
    let mut out = String::from("<!doctype html>\n<html><head><meta charset=\"utf-8\">");
    out.push_str(&format!(
        "<title>analyze {}</title></head><body>\n",
        escape_html(target)
    ));
    out.push_str(&format!("<h1>analyze {}</h1>\n", escape_html(target)));
    out.push_str(&format!("<p>{}</p>\n", escape_html(&report.summary())));
    if !report.diagnostics.is_empty() {
        out.push_str("<ul>\n");
        for d in &report.diagnostics {
            out.push_str(&format!(
                "  <li><code>{}</code></li>\n",
                escape_html(&d.to_string())
            ));
        }
        out.push_str("</ul>\n");
    }
    if let Some(summary) = effects {
        out.push_str(&format!(
            "<h2>effects</h2>\n<pre>{}</pre>\n",
            escape_html(&summary.render())
        ));
    }
    out.push_str("</body></html>\n");
    out
}

/// Prints one target's verdict; returns its diagnostic count.
fn print_report(target: &str, report: &AnalysisReport) -> usize {
    if report.is_clean() {
        let s = &report.stats;
        println!(
            "analyze {target}: clean ({} functions, {} reachable; {} globals, {} handlers)",
            s.functions, s.reachable_functions, s.globals, s.handlers
        );
    } else {
        println!("analyze {target}: {}", report.summary());
        println!("{}", report.render());
    }
    report.diagnostics.len()
}

/// Analyzes a MiniJS or HTML file from disk. With `--effects true` the
/// static effect pass runs too (lattice points, write set, cost bounds);
/// with `--report <out.html>` an escaped markup report is written before
/// any verdict is returned, so failures are captured in the report.
fn cmd_analyze_file(path: &str, args: &Args) -> Result<(), String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let opts = parse_analysis_options(args)?;
    let is_html = source.contains("<script>");
    let report = if is_html {
        analyze_html(&source, &opts)
    } else {
        analyze_script(&source, &opts)
    };
    let effects = if parse_effects_flag(args)? {
        let eopts = parse_effect_options(args)?;
        let result = if is_html {
            effect_summary_html(&source, &eopts)
        } else {
            effect_summary(&source, &eopts)
        };
        let summary = result.map_err(|e| format!("{path}: {e}"))?;
        print!("{}", summary.render());
        Some(summary)
    } else {
        None
    };
    let findings = print_report(path, &report);
    if let Some(out) = args.flag("report") {
        let markup = render_html_report(path, &report, effects.as_ref());
        std::fs::write(out, markup).map_err(|e| format!("writing {out}: {e}"))?;
        println!("report: {out}");
    }
    if findings > 0 {
        return Err(format!("{path}: {}", report.summary()));
    }
    if let Some(summary) = &effects {
        summary.verdict().map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// Statically verifies one model's apps and live snapshots: both paper app
/// sources are analyzed in app mode, then a two-round delta session runs
/// with `SnapshotOptions::verify` on, so the endpoints verify the full
/// snapshot (round 1) and the deltas (round 2) before any link traffic.
fn analyze_model(model: &str, cut: Option<&str>, effects: bool) -> Result<usize, String> {
    let url = apps::synthetic_image_data_url(7, 256);
    let opts = AnalysisOptions::app().with_hosts(vec!["model".to_string()]);
    let eopts = EffectOptions::new().with_host("model", HostEffect::Deterministic);
    let mut findings = 0;
    let sources = [
        ("full-app", apps::full_inference_app(&url)),
        ("partial-app", apps::partial_inference_app(&url)),
    ];
    for (label, html) in &sources {
        findings += print_report(&format!("{model} {label}"), &analyze_html(html, &opts));
        if effects {
            let summary =
                effect_summary_html(html, &eopts).map_err(|e| format!("{model} {label}: {e}"))?;
            print!("{}", summary.render());
            // A nondeterministic paper app would be a finding: its
            // snapshots could not be replayed bit-identically elsewhere.
            findings += summary.nondet.len();
        }
    }
    let mut builder = SessionConfig::paper_builder(model).snapshot(SnapshotOptions {
        verify: true,
        effects,
        ..SnapshotOptions::default()
    });
    if let Some(cut) = cut {
        builder = builder.cut(cut);
    }
    let mut session = OffloadSession::new(builder.build()).map_err(|e| e.to_string())?;
    for round in 1..=2u64 {
        session
            .infer(round)
            .map_err(|e| format!("{model} round {round}: {e}"))?;
    }
    println!("analyze {model} session: 2 rounds verified (full + delta snapshots)");
    Ok(findings)
}

/// `snapedge analyze` — the static snapshot verifier. With `--html` it
/// analyzes a file; otherwise it sweeps the paper apps (all models, or one
/// with `--model`) and verifies live captures pre-send.
fn cmd_analyze(args: &Args) -> Result<(), String> {
    if let Some(path) = args.flag("html") {
        return cmd_analyze_file(path, args);
    }
    let models: Vec<String> = match args.flag("model") {
        Some(m) => vec![m.to_string()],
        None => vec!["googlenet".into(), "agenet".into(), "gendernet".into()],
    };
    let effects = parse_effects_flag(args)?;
    let mut findings = 0;
    for model in &models {
        findings += analyze_model(model, args.flag("cut"), effects)?;
    }
    if findings > 0 {
        return Err(format!("analyze: {findings} diagnostic(s) across targets"));
    }
    println!("analyze: all targets clean");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapedge_analyze::Mode;
    use snapedge_net::LinkState;

    fn args(parts: &[&str]) -> Args {
        Args::from_vec(parts.iter().map(|s| s.to_string()).collect()).unwrap()
    }

    #[test]
    fn parses_arrival_specs() {
        assert_eq!(
            parse_arrival("closed").unwrap(),
            ArrivalProcess::ClosedLoop {
                think: Duration::from_secs(2)
            }
        );
        assert_eq!(
            parse_arrival("closed:0.5").unwrap(),
            ArrivalProcess::ClosedLoop {
                think: Duration::from_millis(500)
            }
        );
        assert_eq!(
            parse_arrival("poisson:120").unwrap(),
            ArrivalProcess::Poisson { rate_hz: 120.0 }
        );
        assert_eq!(
            parse_arrival("diurnal:5:80:3600").unwrap(),
            ArrivalProcess::Diurnal {
                base_hz: 5.0,
                peak_hz: 80.0,
                period: Duration::from_secs(3600)
            }
        );
    }

    #[test]
    fn rejects_malformed_arrival_specs() {
        for bad in [
            "",
            "uniform:3",
            "poisson",
            "poisson:fast",
            "diurnal:5:80",
            "closed:1:2",
        ] {
            assert!(parse_arrival(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_positional_and_flags() {
        let a = args(&[
            "run",
            "--model",
            "agenet",
            "--strategy",
            "partial",
            "--cut",
            "2nd_pool",
        ]);
        assert_eq!(a.positional, vec!["run"]);
        assert_eq!(a.model(), "agenet");
        assert_eq!(a.flag("cut"), Some("2nd_pool"));
    }

    #[test]
    fn later_flags_win() {
        let a = args(&["run", "--mbps", "10", "--mbps", "25"]);
        assert_eq!(a.mbps().unwrap(), 25.0);
    }

    #[test]
    fn missing_flag_value_is_an_error() {
        assert!(Args::from_vec(vec!["run".into(), "--model".into()]).is_err());
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            parse_strategy(&args(&["run"])).unwrap(),
            Strategy::OffloadAfterAck
        );
        assert_eq!(
            parse_strategy(&args(&["run", "--strategy", "client"])).unwrap(),
            Strategy::ClientOnly
        );
        assert_eq!(
            parse_strategy(&args(&["run", "--strategy", "partial"])).unwrap(),
            Strategy::Partial {
                cut: "1st_pool".into()
            }
        );
        assert!(parse_strategy(&args(&["run", "--strategy", "teleport"])).is_err());
    }

    #[test]
    fn defaults() {
        let a = args(&["run"]);
        assert_eq!(a.model(), "googlenet");
        assert_eq!(a.mbps().unwrap(), 30.0);
    }

    #[test]
    fn bad_mbps_is_an_error() {
        assert!(args(&["run", "--mbps", "fast"]).mbps().is_err());
    }

    #[test]
    fn fault_plan_defaults_to_no_faults() {
        let (up, down) = parse_fault_flags(&args(&["run"])).unwrap();
        assert!(up.is_empty() && down.is_empty());
    }

    #[test]
    fn fault_plan_entries_hit_both_links_unless_prefixed() {
        let (up, down) = parse_fault_flags(&args(&[
            "run",
            "--fault-plan",
            "down@2..5,up:corrupt@7..8,down:degrade@1..2x0.5",
        ]))
        .unwrap();
        assert_eq!(up.windows().len(), 2);
        assert_eq!(down.windows().len(), 2);
        assert_eq!(
            up.state_at(Duration::from_secs_f64(7.5)),
            LinkState::Corrupting
        );
        assert_eq!(
            down.state_at(Duration::from_secs_f64(1.5)),
            LinkState::Degraded(0.5)
        );
        // the unprefixed outage lands on both
        assert_eq!(up.state_at(Duration::from_secs(3)), LinkState::Down);
        assert_eq!(down.state_at(Duration::from_secs(3)), LinkState::Down);
    }

    #[test]
    fn bad_fault_plan_is_an_error() {
        assert!(parse_fault_flags(&args(&["run", "--fault-plan", "explode@1..2"])).is_err());
    }

    #[test]
    fn analysis_options_default_to_app_mode_with_model_host() {
        let opts = parse_analysis_options(&args(&["analyze"])).unwrap();
        assert_eq!(opts.mode, Mode::App);
        assert_eq!(opts.hosts, vec!["model".to_string()]);
        let opts =
            parse_analysis_options(&args(&["analyze", "--mode", "snapshot", "--hosts", "a, b"]))
                .unwrap();
        assert_eq!(opts.mode, Mode::Snapshot);
        assert_eq!(opts.hosts, vec!["a".to_string(), "b".to_string()]);
        assert!(parse_analysis_options(&args(&["analyze", "--mode", "dynamic"])).is_err());
    }

    #[test]
    fn paper_apps_analyze_clean_from_the_cli_path() {
        let url = apps::synthetic_image_data_url(7, 256);
        let opts = parse_analysis_options(&args(&["analyze"])).unwrap();
        for html in [
            apps::full_inference_app(&url),
            apps::partial_inference_app(&url),
        ] {
            let report = analyze_html(&html, &opts);
            assert!(report.is_clean(), "{}", report.render());
        }
    }

    #[test]
    fn servers_flag_replaces_the_fleet() {
        let mut cfg = ScenarioConfig::paper("googlenet", Strategy::OffloadAfterAck);
        apply_fleet_flags(
            &args(&[
                "run",
                "--servers",
                "edge-a;edge-b,mbps=12,up=down@2..5+corrupt@7..8",
            ]),
            &mut cfg.servers,
        )
        .unwrap();
        assert_eq!(cfg.servers.len(), 2);
        assert_eq!(cfg.servers[0].name, "edge-a");
        assert_eq!(cfg.servers[1].link.bandwidth_bps, 12.0e6);
        assert_eq!(cfg.servers[1].up_faults.windows().len(), 2);
        // Entries inherit the primary's link as a template.
        assert_eq!(
            cfg.servers[0].link.bandwidth_bps,
            ScenarioConfig::paper("googlenet", Strategy::OffloadAfterAck)
                .primary()
                .link
                .bandwidth_bps
        );
    }

    #[test]
    fn servers_flag_round_trips_through_format_and_parse() {
        // parse -> format -> parse must reproduce the fleet exactly.
        let template = ScenarioConfig::paper("googlenet", Strategy::OffloadAfterAck)
            .primary()
            .clone();
        let fleet = parse_servers(
            "edge-a,mbps=30,latency=0.002;edge-b,mbps=12,loss=0.05,up=down@2..5+degrade@7..9x0.25;\
             edge-c,bps=2500000,overhead=96,down=corrupt@1..2",
            &template,
        )
        .unwrap();
        let formatted = snapedge_core::format_servers(&fleet);
        let reparsed = parse_servers(&formatted, &template).unwrap();
        assert_eq!(reparsed, fleet);
        // And formatting is a fixed point from there on.
        assert_eq!(snapedge_core::format_servers(&reparsed), formatted);
    }

    #[test]
    fn servers_and_fault_plan_flags_are_mutually_exclusive() {
        let mut cfg = ScenarioConfig::paper("googlenet", Strategy::OffloadAfterAck);
        let err = apply_fleet_flags(
            &args(&["run", "--servers", "edge-a", "--fault-plan", "down@2..5"]),
            &mut cfg.servers,
        )
        .unwrap_err();
        assert!(err.contains("--fault-plan"), "{err}");
        assert!(apply_fleet_flags(
            &args(&["run", "--servers", "edge-a,=bad"]),
            &mut cfg.servers
        )
        .is_err());
    }

    #[test]
    fn without_servers_flag_fault_plans_land_on_the_primary() {
        let mut cfg = SessionConfig::paper("googlenet");
        apply_fleet_flags(
            &args(&["session", "--fault-plan", "up:down@2..5"]),
            &mut cfg.servers,
        )
        .unwrap();
        assert_eq!(cfg.servers.len(), 1);
        assert_eq!(cfg.servers[0].up_faults.windows().len(), 1);
        assert!(cfg.servers[0].down_faults.is_empty());
    }

    #[test]
    fn predict_flag_parses_and_defaults_off() {
        assert!(!parse_predict_flag(&args(&["run"])).unwrap());
        assert!(parse_predict_flag(&args(&["run", "--predict", "true"])).unwrap());
        assert!(parse_predict_flag(&args(&["run", "--predict", "on"])).unwrap());
        assert!(!parse_predict_flag(&args(&["run", "--predict", "false"])).unwrap());
        assert!(parse_predict_flag(&args(&["run", "--predict", "maybe"])).is_err());
    }

    #[test]
    fn balance_flags_parse_and_default_off() {
        assert!(!parse_balance_flag(&args(&["fleet"])).unwrap());
        assert!(parse_balance_flag(&args(&["fleet", "--balance", "true"])).unwrap());
        assert!(parse_balance_flag(&args(&["fleet", "--balance", "on"])).unwrap());
        assert!(!parse_balance_flag(&args(&["fleet", "--balance", "off"])).unwrap());
        assert!(parse_balance_flag(&args(&["fleet", "--balance", "maybe"])).is_err());
        assert!(!parse_fair_share_flag(&args(&["fleet"])).unwrap());
        assert!(parse_fair_share_flag(&args(&["fleet", "--fair-share", "true"])).unwrap());
        assert!(parse_fair_share_flag(&args(&["fleet", "--fair-share", "no"])).is_err());
    }

    #[test]
    fn batch_window_flag_parses_seconds() {
        assert_eq!(parse_batch_window_flag(&args(&["fleet"])).unwrap(), None);
        assert_eq!(
            parse_batch_window_flag(&args(&["fleet", "--batch-window", "0.25"])).unwrap(),
            Some(Duration::from_millis(250))
        );
        assert!(parse_batch_window_flag(&args(&["fleet", "--batch-window", "-1"])).is_err());
        assert!(parse_batch_window_flag(&args(&["fleet", "--batch-window", "soon"])).is_err());
    }

    #[test]
    fn effects_flag_parses_and_defaults_off() {
        assert!(!parse_effects_flag(&args(&["run"])).unwrap());
        assert!(parse_effects_flag(&args(&["run", "--effects", "true"])).unwrap());
        assert!(parse_effects_flag(&args(&["run", "--effects", "on"])).unwrap());
        assert!(!parse_effects_flag(&args(&["run", "--effects", "off"])).unwrap());
        assert!(parse_effects_flag(&args(&["run", "--effects", "maybe"])).is_err());
    }

    #[test]
    fn escape_html_neutralizes_markup_characters() {
        assert_eq!(
            escape_html("<script>alert('x & \"y\"')</script>"),
            "&lt;script&gt;alert(&#39;x &amp; &quot;y&quot;&#39;)&lt;/script&gt;"
        );
        assert_eq!(escape_html("plain_ident"), "plain_ident");
    }

    #[test]
    fn html_report_escapes_guest_identifiers() {
        use snapedge_analyze::{Diagnostic, Rule, Severity};
        // Guest source is untrusted: a hostile name reaching a diagnostic
        // must come out as text, not live markup.
        let report = AnalysisReport {
            diagnostics: vec![Diagnostic {
                rule: Rule::FreeIdentifier,
                severity: Severity::Error,
                message: "undefined identifier `x<script>alert(1)</script>`".to_string(),
                name: Some("x<script>alert(1)</script>".to_string()),
                line: Some(1),
            }],
            stats: Default::default(),
        };
        let markup = render_html_report("evil<b>.html", &report, None);
        assert!(!markup.contains("<script>"), "{markup}");
        assert!(!markup.contains("evil<b>"), "{markup}");
        assert!(
            markup.contains("&lt;script&gt;alert(1)&lt;/script&gt;"),
            "{markup}"
        );
    }

    #[test]
    fn paper_apps_have_deterministic_effect_summaries() {
        let url = apps::synthetic_image_data_url(7, 256);
        let eopts = EffectOptions::new().with_host("model", HostEffect::Deterministic);
        for html in [
            apps::full_inference_app(&url),
            apps::partial_inference_app(&url),
        ] {
            let summary = effect_summary_html(&html, &eopts).unwrap();
            assert!(!summary.is_nondeterministic(), "{}", summary.render());
            assert!(summary.writable_globals().is_some(), "{}", summary.render());
        }
    }

    #[test]
    fn retry_flag_parses_default_and_spec() {
        assert_eq!(parse_retry_flag(&args(&["run"])).unwrap(), None);
        assert_eq!(
            parse_retry_flag(&args(&["run", "--retry", "default"])).unwrap(),
            Some(RetryPolicy::default())
        );
        let p = parse_retry_flag(&args(&["run", "--retry", "attempts=7,deadline=90"]))
            .unwrap()
            .unwrap();
        assert_eq!(p.max_attempts, 7);
        assert_eq!(p.deadline, Duration::from_secs(90));
        assert!(parse_retry_flag(&args(&["run", "--retry", "attempts=zero"])).is_err());
    }

    #[test]
    fn meter_flag_parses_spec_and_defaults_off() {
        assert_eq!(parse_meter_flag(&args(&["run"])).unwrap(), None);
        let limits = parse_meter_flag(&args(&["run", "--meter", "ops=5000,heap=200,slice=2.5"]))
            .unwrap()
            .unwrap();
        assert_eq!(limits.max_ops, Some(5000));
        assert_eq!(limits.max_heap_cells, Some(200));
        assert_eq!(limits.time_slice, Some(Duration::from_secs_f64(0.0025)));
        assert!(parse_meter_flag(&args(&["run", "--meter", "ops=zero"])).is_err());
        assert!(parse_meter_flag(&args(&["run", "--meter", "warp=9"])).is_err());
    }
}
