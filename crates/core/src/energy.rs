//! Client-side energy accounting.
//!
//! The offloading literature the paper builds on (MAUI [22], CloneCloud
//! [23], ThinkAir [24]) is motivated by *battery life* as much as latency.
//! This module attaches a simple power model to the client board and
//! integrates it over a scenario's phase breakdown: CPU-active power while
//! executing and (de)serializing snapshots, radio power while transfers
//! are in flight, idle power while waiting for the server.

use crate::scenario::ScenarioReport;
use std::time::Duration;

/// Power draw of a client device in its three macro states.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyProfile {
    /// Device name.
    pub name: String,
    /// Power while the CPU crunches (DNN layers, snapshot text work).
    pub cpu_active_watts: f64,
    /// Power while the radio is actively transferring.
    pub radio_watts: f64,
    /// Baseline power while waiting for the edge server.
    pub idle_watts: f64,
}

/// An Odroid-XU4-class board: big.LITTLE SoC under full load ≈ 6 W,
/// Wi-Fi radio ≈ 1.2 W, idle board with display ≈ 1.5 W.
pub fn odroid_xu4_energy() -> EnergyProfile {
    EnergyProfile {
        name: "odroid-xu4".to_string(),
        cpu_active_watts: 6.0,
        radio_watts: 1.2,
        idle_watts: 1.5,
    }
}

/// Energy spent by the client over one inference, by state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Joules with the CPU active.
    pub compute_joules: f64,
    /// Joules with the radio active.
    pub radio_joules: f64,
    /// Joules idling while the server works.
    pub idle_joules: f64,
}

impl EnergyReport {
    /// Total client energy for the inference.
    pub fn total_joules(&self) -> f64 {
        self.compute_joules + self.radio_joules + self.idle_joules
    }
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Integrates `profile` over a scenario's phase breakdown.
///
/// The client is CPU-active during its own execution and snapshot
/// capture/restore, radio-active during both transfers (it holds the
/// connection), and idle while the server restores, executes and captures.
pub fn client_energy(profile: &EnergyProfile, report: &ScenarioReport) -> EnergyReport {
    let b = &report.breakdown;
    let cpu = secs(b.exec_client) + secs(b.capture_client) + secs(b.restore_client);
    let radio = secs(b.transfer_up) + secs(b.transfer_down);
    let idle = secs(b.restore_server) + secs(b.exec_server) + secs(b.capture_server);
    EnergyReport {
        compute_joules: profile.cpu_active_watts * cpu,
        radio_joules: profile.radio_watts * radio,
        idle_joules: profile.idle_watts * idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_scenario, ScenarioConfig, Strategy};

    fn energy(model: &str, strategy: Strategy) -> f64 {
        let report = run_scenario(&ScenarioConfig::paper(model, strategy)).unwrap();
        client_energy(&odroid_xu4_energy(), &report).total_joules()
    }

    #[test]
    fn offloading_saves_an_order_of_magnitude_of_energy() {
        // MAUI's thesis, reproduced on this workload: after the model is
        // pre-sent, offloading turns ~2.7 minutes-of-battery CPU burns
        // into seconds of idle+radio.
        for model in ["googlenet", "agenet"] {
            let local = energy(model, Strategy::ClientOnly);
            let offload = energy(model, Strategy::OffloadAfterAck);
            assert!(
                local > 10.0 * offload,
                "{model}: local {local} J vs offload {offload} J"
            );
        }
    }

    #[test]
    fn before_ack_costs_more_energy_than_after_ack() {
        let before = energy("agenet", Strategy::OffloadBeforeAck);
        let after = energy("agenet", Strategy::OffloadAfterAck);
        assert!(before > after, "radio time dominates before the ACK");
    }

    #[test]
    fn partial_inference_pays_energy_for_privacy() {
        let full = energy("googlenet", Strategy::OffloadAfterAck);
        let partial = energy(
            "googlenet",
            Strategy::Partial {
                cut: "1st_pool".into(),
            },
        );
        assert!(partial > full);
        // ...but still far below running everything locally.
        let local = energy("googlenet", Strategy::ClientOnly);
        assert!(partial < local / 3.0);
    }

    #[test]
    fn components_are_nonnegative_and_sum() {
        let report = run_scenario(&ScenarioConfig::paper(
            "gendernet",
            Strategy::OffloadAfterAck,
        ))
        .unwrap();
        let e = client_energy(&odroid_xu4_energy(), &report);
        assert!(e.compute_joules >= 0.0 && e.radio_joules >= 0.0 && e.idle_joules >= 0.0);
        let sum = e.compute_joules + e.radio_joules + e.idle_joules;
        assert!((sum - e.total_joules()).abs() < 1e-9);
    }

    #[test]
    fn local_execution_is_pure_compute() {
        let report = run_scenario(&ScenarioConfig::paper("agenet", Strategy::ClientOnly)).unwrap();
        let e = client_energy(&odroid_xu4_energy(), &report);
        assert_eq!(e.radio_joules, 0.0);
        assert_eq!(e.idle_joules, 0.0);
        assert!(e.compute_joules > 0.0);
    }
}
