//! Tensor encodings with exact byte accounting.
//!
//! Two encodings matter to the offloading system:
//!
//! * **Binary** — little-endian `f32` plus a shape header. This is how model
//!   files are stored and *pre-sent* to the edge server (Section III-B.1 of
//!   the paper). Size ≈ `4 bytes × element count`, which reproduces the
//!   paper's model sizes (GoogLeNet ≈ 27 MB, Age/GenderNet ≈ 44 MB).
//!
//! * **JavaScript text** — the decimal representation a snapshot embeds
//!   (`var feature = new Float32Array([0.1234, ...]);`). Shortest-roundtrip
//!   decimal printing averages ≈ 12–19 bytes per element for typical
//!   activations, which is exactly why the paper measures 14.7 MB of feature
//!   data at GoogLeNet's `1st_conv` (112×112×64 floats) but only 2.9 MB at
//!   `1st_pool` (56×56×64 floats).

use crate::{Tensor, TensorError};

/// Magic prefix of the binary tensor format (`SETB` = SnapEdge Tensor Binary).
const MAGIC: &[u8; 4] = b"SETB";

/// Encodes a tensor as `MAGIC | rank:u32 | dims:u32* | data:f32*`,
/// little-endian throughout.
pub fn to_binary(t: &Tensor) -> Vec<u8> {
    let dims = t.shape().dims();
    let mut out = Vec::with_capacity(8 + dims.len() * 4 + t.len() * 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Number of bytes [`to_binary`] will produce, computable without encoding.
pub fn binary_size(t: &Tensor) -> usize {
    8 + t.shape().rank() * 4 + t.len() * 4
}

/// Decodes a buffer produced by [`to_binary`].
///
/// # Errors
///
/// Returns [`TensorError::Decode`] for truncated or malformed input.
pub fn from_binary(buf: &[u8]) -> Result<Tensor, TensorError> {
    let err = |msg: &str| TensorError::Decode(msg.to_string());
    if buf.len() < 8 || &buf[..4] != MAGIC {
        return Err(err("missing SETB header"));
    }
    let rank = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
    let header = 8 + rank * 4;
    if buf.len() < header {
        return Err(err("truncated dimension list"));
    }
    let mut dims = Vec::with_capacity(rank);
    for i in 0..rank {
        let off = 8 + i * 4;
        dims.push(u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize);
    }
    let volume: usize = dims.iter().product();
    if buf.len() != header + volume * 4 {
        return Err(err("data length does not match shape"));
    }
    let mut data = Vec::with_capacity(volume);
    for i in 0..volume {
        let off = header + i * 4;
        data.push(f32::from_le_bytes(buf[off..off + 4].try_into().unwrap()));
    }
    Tensor::from_vec(&dims, data)
}

/// Renders a tensor as the JavaScript expression a snapshot embeds:
/// `new Float32Array([v0,v1,...])` — shortest-roundtrip decimal text.
///
/// The snapshot generator in `snapedge-webapp` uses this for typed arrays;
/// its length (not its parse-ability by a real JS engine) is what the
/// paper's transmission measurements depend on.
pub fn to_js_text(t: &Tensor) -> String {
    let mut s = String::with_capacity(t.len() * 12 + 32);
    s.push_str("new Float32Array([");
    for (i, &v) in t.data().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_js_number(&mut s, v);
    }
    s.push_str("])");
    s
}

/// Number of bytes [`to_js_text`] would produce, without building the string.
pub fn js_text_size(t: &Tensor) -> usize {
    let mut n = "new Float32Array([".len() + "])".len();
    if !t.is_empty() {
        n += t.len() - 1; // commas
    }
    let mut buf = String::new();
    for &v in t.data() {
        buf.clear();
        push_js_number(&mut buf, v);
        n += buf.len();
    }
    n
}

/// Appends a float in JS literal syntax (`NaN`/`Infinity` spelled out).
fn push_js_number(s: &mut String, v: f32) {
    use std::fmt::Write;
    if v.is_nan() {
        s.push_str("NaN");
    } else if v.is_infinite() {
        s.push_str(if v > 0.0 { "Infinity" } else { "-Infinity" });
    } else {
        // Rust's Display for f32 prints the shortest string that
        // round-trips, same guarantee as JS Number#toString.
        let _ = write!(s, "{v}");
    }
}

/// Parses the output of [`to_js_text`] back into a flat `Vec<f32>`.
///
/// The snapshot interpreter uses this to restore typed arrays; shape is
/// carried separately by the surrounding snapshot code.
///
/// # Errors
///
/// Returns [`TensorError::Decode`] when the text is not a
/// `new Float32Array([...])` expression.
pub fn from_js_text(text: &str) -> Result<Vec<f32>, TensorError> {
    let inner = text
        .trim()
        .strip_prefix("new Float32Array([")
        .and_then(|rest| rest.strip_suffix("])"))
        .ok_or_else(|| TensorError::Decode("not a Float32Array literal".to_string()))?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|tok| match tok.trim() {
            "NaN" => Ok(f32::NAN),
            "Infinity" => Ok(f32::INFINITY),
            "-Infinity" => Ok(f32::NEG_INFINITY),
            t => t
                .parse::<f32>()
                .map_err(|e| TensorError::Decode(format!("bad float {t:?}: {e}"))),
        })
        .collect()
}

/// Average JS-text bytes per element for a tensor — the quantity that turns
/// element counts into the paper's feature-data megabytes.
pub fn js_bytes_per_element(t: &Tensor) -> f64 {
    if t.is_empty() {
        return 0.0;
    }
    js_text_size(t) as f64 / t.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn binary_roundtrip() {
        let t = Tensor::from_fn(&[3, 4, 5], |i| (i as f32).sin()).unwrap();
        let buf = to_binary(&t);
        assert_eq!(buf.len(), binary_size(&t));
        let back = from_binary(&buf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_binary(b"").is_err());
        assert!(from_binary(b"XXXX\x01\x00\x00\x00").is_err());
        let t = Tensor::zeros(&[2, 2]).unwrap();
        let mut buf = to_binary(&t);
        buf.truncate(buf.len() - 1);
        assert!(from_binary(&buf).is_err());
    }

    #[test]
    fn binary_size_is_four_bytes_per_param_plus_header() {
        // A 44 MB model is ~11.4M params: size must be 4*n + small header.
        let t = Tensor::zeros(&[1000]).unwrap();
        assert_eq!(binary_size(&t), 8 + 4 + 4000);
    }

    #[test]
    fn js_text_roundtrip() {
        let t = Tensor::from_vec(&[4], vec![0.5, -1.25, 3.0e-8, 123456.0]).unwrap();
        let text = to_js_text(&t);
        let back = from_js_text(&text).unwrap();
        assert_eq!(back, t.data());
    }

    #[test]
    fn js_text_handles_non_finite() {
        let t = Tensor::from_vec(&[3], vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY]).unwrap();
        let back = from_js_text(&to_js_text(&t)).unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], f32::INFINITY);
        assert_eq!(back[2], f32::NEG_INFINITY);
    }

    #[test]
    fn js_text_size_matches_actual() {
        let t =
            Tensor::from_fn(&[257], |i| ((i * 2654435761) % 10000) as f32 / 7.0 - 500.0).unwrap();
        assert_eq!(js_text_size(&t), to_js_text(&t).len());
    }

    #[test]
    fn js_text_much_larger_than_binary_for_activations() {
        // The crux of the paper's Fig. 8 size analysis: text-serialized
        // activations cost several times their binary size.
        let t = Tensor::from_fn(&[10_000], |i| {
            // Typical post-conv activations: small non-round reals.
            (((i * 2654435761) % 100_000) as f32 / 100_000.0 - 0.3) * 4.7
        })
        .unwrap();
        let per_elem = js_bytes_per_element(&t);
        assert!(
            per_elem > 8.0 && per_elem < 22.0,
            "bytes/element = {per_elem}"
        );
        assert!(js_text_size(&t) > 2 * binary_size(&t));
    }

    #[test]
    fn empty_array_text() {
        // from_js_text on a literal with no elements.
        assert_eq!(
            from_js_text("new Float32Array([])").unwrap(),
            Vec::<f32>::new()
        );
        assert!(from_js_text("var x = 3").is_err());
    }
}
