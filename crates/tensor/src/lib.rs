//! # snapedge-tensor
//!
//! Dense `f32` tensors and the neural-network kernels needed by the
//! snapedge reproduction of *"Computation Offloading for Machine Learning
//! Web Apps in the Edge Server Environment"* (ICDCS 2018).
//!
//! The crate provides:
//!
//! * [`Shape`] — dimension bookkeeping with row-major strides,
//! * [`Tensor`] — an owned, row-major `f32` tensor,
//! * [`ops`] — the CNN kernels used by the paper's three models
//!   (convolution, max/average pooling, ReLU, LRN, fully-connected,
//!   channel concatenation, softmax),
//! * [`serialize`] — the two encodings the offloading system cares about:
//!   compact little-endian binary (model files on disk / pre-sending) and
//!   JavaScript decimal text (what a web-app snapshot embeds), with exact
//!   byte accounting. The text encoding is what makes the paper's feature
//!   data sizes (14.7 MB at `1st_conv`, 2.9 MB at `1st_pool` for GoogLeNet)
//!   reproducible.
//!
//! # Example
//!
//! ```
//! use snapedge_tensor::{Tensor, ops};
//!
//! # fn main() -> Result<(), snapedge_tensor::TensorError> {
//! // A 3-channel 8x8 input, convolved with four 3x3 filters.
//! let input = Tensor::filled(&[3, 8, 8], 1.0)?;
//! let weights = Tensor::filled(&[4, 3, 3, 3], 0.5)?;
//! let bias = Tensor::zeros(&[4])?;
//! let out = ops::conv2d(&input, &weights, &bias, 1, 1)?;
//! assert_eq!(out.shape().dims(), &[4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod ops;
pub mod serialize;
mod shape;
mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
