//! Cross-crate integration tests: real DNN + real browsers + real
//! snapshots + simulated network, end to end.

use snapedge_core::prelude::*;
use snapedge_dnn::{ModelBundle, ParamStore};
use snapedge_tensor::Tensor;

/// The label every strategy should produce: computed directly with the
/// DNN engine, bypassing the web stack entirely.
fn ground_truth_class(seed: u64, image_bytes: usize) -> usize {
    let net = zoo::tiny_cnn();
    let params = net.init_params(seed).unwrap();
    // Reproduce the host's deterministic image decode: FNV over the data
    // URL, then the same per-pixel mix.
    let url = snapedge_core::apps::synthetic_image_data_url(seed, image_bytes);
    let mut h: u64 = seed;
    for b in url.bytes() {
        h = h.wrapping_mul(1099511628211).wrapping_add(b as u64);
    }
    let input = Tensor::from_fn(net.input_shape().dims(), |i| {
        let mut z = h.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        z ^= z >> 29;
        ((z % 256) as f32) / 255.0
    })
    .unwrap();
    let fwd = net.forward(&params, &input, ExecMode::Real).unwrap();
    fwd.final_output().argmax()
}

#[test]
fn every_strategy_matches_the_dnn_engines_ground_truth() {
    let cfg = ScenarioConfig::tiny(Strategy::ClientOnly);
    let expected = format!("class_{}", ground_truth_class(cfg.seed, cfg.image_bytes));
    for strategy in [
        Strategy::ClientOnly,
        Strategy::ServerOnly,
        Strategy::OffloadBeforeAck,
        Strategy::OffloadAfterAck,
        Strategy::Partial {
            cut: "1st_pool".into(),
        },
        Strategy::Partial {
            cut: "2nd_pool".into(),
        },
    ] {
        let report = run_scenario(&ScenarioConfig::tiny(strategy.clone())).unwrap();
        assert!(
            report.result.starts_with(&expected),
            "strategy {strategy:?}: got {:?}, expected {expected}*",
            report.result
        );
    }
}

#[test]
fn partial_inference_works_at_every_valid_cut_of_the_tiny_net() {
    let net = zoo::tiny_cnn();
    let reference = run_scenario(&ScenarioConfig::tiny(Strategy::ClientOnly)).unwrap();
    for cut in net.cut_points() {
        // Skip the classifier tail: offloading after softmax is pointless
        // but still mechanically valid; include it anyway.
        let report = run_scenario(&ScenarioConfig::tiny(Strategy::Partial {
            cut: cut.label.clone(),
        }))
        .unwrap();
        assert_eq!(report.result, reference.result, "cut {}", cut.label);
    }
}

#[test]
fn deeper_cuts_shift_work_from_server_to_client() {
    let shallow = run_scenario(&ScenarioConfig::tiny(Strategy::Partial {
        cut: "1st_conv".into(),
    }))
    .unwrap();
    let deep = run_scenario(&ScenarioConfig::tiny(Strategy::Partial {
        cut: "2nd_pool".into(),
    }))
    .unwrap();
    assert!(deep.breakdown.exec_client > shallow.breakdown.exec_client);
    assert!(deep.breakdown.exec_server < shallow.breakdown.exec_server);
}

#[test]
fn model_bundle_survives_the_wire_and_reproduces_inference() {
    // What pre-sending actually ships: materialized files that the server
    // loads back into a parameter store.
    let net = zoo::tiny_cnn();
    let params = net.init_params(99).unwrap();
    let bundle = ModelBundle::materialized(&net, &params).unwrap();

    // "Receive" the files: rebuild network from the description and
    // parameters from the blobs.
    let desc = bundle.description().unwrap();
    let rebuilt = snapedge_dnn::Network::from_description(desc).unwrap();
    let loaded = ParamStore::from_bundle(&bundle).unwrap();

    let input = Tensor::from_fn(net.input_shape().dims(), |i| ((i % 17) as f32) / 17.0).unwrap();
    let a = net.forward(&params, &input, ExecMode::Real).unwrap();
    let b = rebuilt.forward(&loaded, &input, ExecMode::Real).unwrap();
    assert_eq!(a.final_output(), b.final_output());
}

#[test]
fn rear_only_server_cannot_execute_front_layers() {
    // The privacy mechanism: the server holding only rear parameter files
    // must fail if asked to run the front of the network.
    let net = zoo::tiny_cnn();
    let params = net.init_params(3).unwrap();
    let bundle = ModelBundle::materialized(&net, &params).unwrap();
    let cut = net.node_id("1st_pool").unwrap();
    let (_front, rear) = bundle.split(&net, cut).unwrap();
    let server_params = ParamStore::from_bundle(&rear).unwrap();

    let input = Tensor::zeros(net.input_shape().dims()).unwrap();
    // Front execution requires conv1 params, which the server lacks.
    let err = net.forward_until(&server_params, &input, cut, ExecMode::Real);
    assert!(err.is_err(), "server must not be able to run front layers");
    // But the rear runs fine given feature data.
    let feature = Tensor::zeros(net.output_shape(cut).unwrap().dims()).unwrap();
    assert!(net
        .forward_from(&server_params, cut, feature, ExecMode::Real)
        .is_ok());
}

#[test]
fn snapshots_grow_with_feature_size_not_model_size() {
    // Pre-sending means the snapshot excludes the model: full-offload
    // snapshots are tiny even for 44 MB models.
    let full = run_scenario(&ScenarioConfig::paper("agenet", Strategy::OffloadAfterAck)).unwrap();
    assert!(
        full.snapshot_up_bytes < 200 * 1024,
        "full-offload snapshot is {} bytes",
        full.snapshot_up_bytes
    );
    let partial = run_scenario(&ScenarioConfig::paper(
        "agenet",
        Strategy::Partial {
            cut: "1st_pool".into(),
        },
    ))
    .unwrap();
    assert!(
        partial.snapshot_up_bytes > 10 * full.snapshot_up_bytes,
        "partial snapshot must carry megabytes of feature text"
    );
}

#[test]
fn result_snapshot_updates_the_client_screen() {
    // The DOM mutation performed on the server must be visible on the
    // client after the return migration — "we can even change the
    // client's screen at the edge server".
    let report = run_scenario(&ScenarioConfig::tiny(Strategy::OffloadAfterAck)).unwrap();
    assert!(report.result.starts_with("class_"));
    // The result element was "waiting", then "image loaded", and finally
    // the label — all three states travelled through snapshots.
    assert_ne!(report.result, "waiting");
    assert_ne!(report.result, "image loaded");
}

#[test]
fn ack_timing_reflects_model_size() {
    let small = run_scenario(&ScenarioConfig::tiny(Strategy::OffloadAfterAck)).unwrap();
    let large = run_scenario(&ScenarioConfig::paper("agenet", Strategy::OffloadAfterAck)).unwrap();
    assert!(large.ack_at.unwrap() > small.ack_at.unwrap());
    assert!(large.ack_at.unwrap().as_secs_f64() > 10.0); // 44 MiB at 30 Mbps
}
