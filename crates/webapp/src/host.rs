//! Host (native) objects: the bridge between MiniJS apps and the embedding
//! system. The ML framework of the paper (Caffe.js) is exposed to apps as
//! the host object `model` — `snapedge-core` registers an implementation
//! that runs the DNN engine and charges simulated device time.

use crate::browser::Core;
use crate::value::JsValue;
use crate::WebError;

/// A native object callable from MiniJS (e.g. `model.inference(x)`).
///
/// Host objects are part of the *environment*, not the app state: snapshots
/// never serialize them, which mirrors the paper — the browser and the ML
/// framework exist on both sides; only app state migrates.
pub trait HostObject {
    /// Invokes `object.method(args...)`.
    ///
    /// # Errors
    ///
    /// Implementations return [`WebError::Runtime`] for unknown methods or
    /// bad arguments.
    fn call(
        &mut self,
        method: &str,
        args: &[JsValue],
        core: &mut Core,
    ) -> Result<JsValue, WebError>;

    /// Reads `object.property`. Defaults to an error.
    ///
    /// # Errors
    ///
    /// Returns [`WebError::Runtime`] unless overridden.
    fn get(&mut self, property: &str, _core: &mut Core) -> Result<JsValue, WebError> {
        Err(WebError::Runtime(format!(
            "host object has no property {property:?}"
        )))
    }
}

/// A trivial host object backed by a closure — convenient in tests.
pub struct FnHost<F>(pub F);

impl<F> HostObject for FnHost<F>
where
    F: FnMut(&str, &[JsValue], &mut Core) -> Result<JsValue, WebError>,
{
    fn call(
        &mut self,
        method: &str,
        args: &[JsValue],
        core: &mut Core,
    ) -> Result<JsValue, WebError> {
        (self.0)(method, args, core)
    }
}
