//! Queue-aware load balancing, admission control and per-tenant fair
//! share for the fleet engine.
//!
//! PR 6's engine made queueing delay *emergent* — overlapping clients on
//! one server CPU wait at `max(now, busy_until)` — but both workload
//! paths still picked servers blind to it: modeled clients rotated
//! statically and real sessions ranked candidates by link health alone.
//! A diurnal peak therefore herds clients onto one server and silently
//! erases the offload win the paper measures. This module prices the
//! queue:
//!
//! * [`Balancer`] — per-server **predicted queueing delay**, derived
//!   from the engine's `busy_until` ground truth plus deterministic
//!   integer EWMAs of recent waits and service times (the closed-loop
//!   signal when reservations alone under-estimate). The engine feeds
//!   the prediction to [`ModeledWorkload`](crate::ModeledWorkload) for
//!   least-predicted-sojourn selection, to
//!   [`ServerPool::select_with_delays`](crate::ServerPool::select_with_delays)
//!   for failover ordering, and to the session's
//!   [`AdaptiveOffloader`](crate::adaptive::AdaptiveOffloader) as an
//!   additive prior — queueing delay that erases the offload win
//!   degrades the round to local *before* any bytes commit to the wire
//!   (admission control).
//! * [`DrrScheduler`] — deficit-round-robin grant ordering (surplus
//!   variant: serve at non-negative deficit, charge actual service time,
//!   refill one quantum per skipped pass), so one chatty tenant cannot
//!   starve co-located clients of the server CPU.
//! * [`jain`] — Jain's fairness index over per-client completions, the
//!   headline fairness number of a [`FleetReport`](crate::FleetReport).
//!
//! Everything here is a pure function of the observation stream —
//! integer microsecond arithmetic only, no floats in state — so balanced
//! runs replay bit for bit, and every knob defaults *off*: an engine
//! with balancing disabled is byte-identical to pre-balancing behaviour.

use std::time::Duration;

/// Divisor of the integer EWMAs: `new = (old * (DIV - 1) + sample) / DIV`.
/// A small divisor keeps the estimate reactive to the most recent waits
/// (the signal a diurnal swing moves fastest).
const EWMA_DIV: u128 = 5;

/// Default deficit-round-robin quantum: the service credit every waiting
/// tenant earns per scheduling pass. Small against typical DNN service
/// times, so a heavy tenant repays its overdraft over several passes
/// while light tenants keep flowing.
pub const DEFAULT_DRR_QUANTUM: Duration = Duration::from_millis(5);

/// Per-server predicted queueing delay, maintained by the engine as
/// grants happen and consulted at round start by whichever path picks a
/// server (modeled selection, session failover, admission control).
#[derive(Debug, Clone)]
pub struct Balancer {
    /// Ground truth mirrored from the engine: when each server's CPU
    /// frees (covers every reservation already granted).
    busy_until: Vec<Duration>,
    /// Requests parked in each server's fair-share queue — work the
    /// `busy_until` reservation does not cover yet.
    queued: Vec<usize>,
    /// EWMA of observed queueing delays, in microseconds.
    wait_ewma_us: Vec<u128>,
    /// EWMA of observed service times, in microseconds — prices the
    /// parked backlog of a fair-share queue.
    service_ewma_us: Vec<u128>,
}

impl Balancer {
    /// A balancer over `fleet` server candidates, all predicted idle.
    pub fn new(fleet: usize) -> Balancer {
        Balancer {
            busy_until: vec![Duration::ZERO; fleet],
            queued: vec![0; fleet],
            wait_ewma_us: vec![0; fleet],
            service_ewma_us: vec![0; fleet],
        }
    }

    /// Number of server candidates tracked.
    pub fn fleet(&self) -> usize {
        self.busy_until.len()
    }

    /// Records one CPU grant on `server`: the request waited `wait`, ran
    /// from its admission until `released`, for `service` of CPU time.
    pub fn note_grant(
        &mut self,
        server: usize,
        wait: Duration,
        service: Duration,
        released: Duration,
    ) {
        let Some(until) = self.busy_until.get_mut(server) else {
            return;
        };
        *until = (*until).max(released);
        self.wait_ewma_us[server] = ewma(self.wait_ewma_us[server], wait.as_micros());
        self.service_ewma_us[server] = ewma(self.service_ewma_us[server], service.as_micros());
    }

    /// Mirrors the depth of `server`'s fair-share queue (requests parked
    /// behind a busy CPU, not yet covered by a `busy_until` reservation).
    pub fn set_queue_depth(&mut self, server: usize, depth: usize) {
        if let Some(slot) = self.queued.get_mut(server) {
            *slot = depth;
        }
    }

    /// Predicted queueing delay a request reaching `server` at time `at`
    /// would pay: the reservation backlog (`busy_until - at`, ground
    /// truth) or the recent-wait EWMA, whichever is worse, plus the
    /// parked fair-share queue priced at the service-time EWMA.
    pub fn predicted_wait(&self, server: usize, at: Duration) -> Duration {
        let Some(&until) = self.busy_until.get(server) else {
            return Duration::ZERO;
        };
        let reserved = until.saturating_sub(at);
        let ewma_wait = duration_from_us(self.wait_ewma_us[server]);
        let backlog = duration_from_us(
            self.service_ewma_us[server].saturating_mul(self.queued[server] as u128),
        );
        reserved.max(ewma_wait).saturating_add(backlog)
    }

    /// The full fleet outlook at time `at`: one predicted queueing delay
    /// per candidate, in fleet order — what the engine hands a session
    /// before its round starts.
    pub fn outlook(&self, at: Duration) -> Vec<Duration> {
        (0..self.fleet())
            .map(|s| self.predicted_wait(s, at))
            .collect()
    }
}

/// One integer-EWMA step (see [`EWMA_DIV`]). A zero state adopts the
/// first sample outright so cold starts are not dragged toward zero.
fn ewma(state: u128, sample: u128) -> u128 {
    if state == 0 {
        sample
    } else {
        (state * (EWMA_DIV - 1) + sample) / EWMA_DIV
    }
}

/// Saturating `u128`-microseconds → `Duration`.
fn duration_from_us(us: u128) -> Duration {
    Duration::from_micros(u64::try_from(us).unwrap_or(u64::MAX))
}

/// Deficit round robin over tenants (surplus variant): every tenant
/// carries a signed service-time deficit; a tenant is served when its
/// deficit is non-negative, then charged the *actual* service time of
/// the grant, and every pass over the waiting set refills one quantum —
/// so a tenant that just burned a long grant waits out its overdraft
/// while cheaper tenants keep flowing, and nobody starves (each pass
/// strictly raises every waiting deficit).
#[derive(Debug, Clone)]
pub struct DrrScheduler {
    quantum_us: i128,
    deficit_us: Vec<i128>,
    /// Tenant id after the last served one — the ring scan starts here.
    cursor: usize,
}

impl DrrScheduler {
    /// A scheduler refilling `quantum` of service credit per pass
    /// (clamped to at least one microsecond so scans always terminate).
    pub fn new(quantum: Duration) -> DrrScheduler {
        DrrScheduler {
            quantum_us: i128::try_from(quantum.as_micros().max(1)).unwrap_or(i128::MAX),
            deficit_us: Vec::new(),
            cursor: 0,
        }
    }

    fn deficit_mut(&mut self, tenant: usize) -> &mut i128 {
        if tenant >= self.deficit_us.len() {
            self.deficit_us.resize(tenant + 1, 0);
        }
        &mut self.deficit_us[tenant]
    }

    /// Picks the next tenant to serve from `waiting` (any order;
    /// deduplicated ids). Scans the ring from the cursor: the first
    /// tenant with a non-negative deficit is served, skipped tenants
    /// earn one quantum per pass. Returns `None` only for an empty set.
    pub fn pick(&mut self, waiting: &[usize]) -> Option<usize> {
        if waiting.is_empty() {
            return None;
        }
        let mut ring: Vec<usize> = waiting.to_vec();
        ring.sort_unstable();
        ring.dedup();
        // Rotate so the scan starts at the first tenant >= cursor.
        let start = ring.partition_point(|&t| t < self.cursor);
        let quantum = self.quantum_us;
        loop {
            for i in 0..ring.len() {
                let tenant = ring[(start + i) % ring.len()];
                let deficit = self.deficit_mut(tenant);
                if *deficit >= 0 {
                    self.cursor = tenant + 1;
                    return Some(tenant);
                }
                *deficit = deficit.saturating_add(quantum);
            }
        }
    }

    /// Charges `tenant` the actual service time of the grant it just
    /// received.
    pub fn charge(&mut self, tenant: usize, cost: Duration) {
        let cost_us = i128::try_from(cost.as_micros()).unwrap_or(i128::MAX);
        let deficit = self.deficit_mut(tenant);
        *deficit = deficit.saturating_sub(cost_us);
    }
}

/// Jain's fairness index over per-tenant allocations:
/// `(Σx)² / (n · Σx²)`, `1.0` for a perfectly even split, `1/n` when one
/// tenant holds everything. Degenerate inputs (empty, all-zero) read as
/// perfectly fair.
pub fn jain(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let squares: f64 = values.iter().map(|x| x * x).sum();
    if squares == 0.0 {
        1.0
    } else {
        (sum * sum) / (n as f64 * squares)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> Duration = Duration::from_millis;

    #[test]
    fn idle_fleet_predicts_zero_wait() {
        let balancer = Balancer::new(3);
        for s in 0..3 {
            assert_eq!(balancer.predicted_wait(s, Duration::ZERO), Duration::ZERO);
        }
        assert_eq!(balancer.outlook(MS(500)), vec![Duration::ZERO; 3]);
    }

    #[test]
    fn reservations_are_ground_truth() {
        let mut balancer = Balancer::new(2);
        // Server 0 is booked until t=100ms; a request at t=40ms waits at
        // least the remaining 60ms.
        balancer.note_grant(0, Duration::ZERO, MS(100), MS(100));
        assert_eq!(balancer.predicted_wait(0, MS(40)), MS(60));
        // Past the reservation the prediction decays to the wait EWMA
        // (zero here: the recorded grant never waited).
        assert_eq!(balancer.predicted_wait(0, MS(200)), Duration::ZERO);
        // The other server is untouched.
        assert_eq!(balancer.predicted_wait(1, MS(40)), Duration::ZERO);
    }

    #[test]
    fn wait_ewma_keeps_predicting_after_the_reservation_drains() {
        let mut balancer = Balancer::new(1);
        balancer.note_grant(0, MS(50), MS(10), MS(60));
        // The reservation expired, but recent grants waited 50ms — the
        // closed-loop signal keeps the prediction warm.
        assert_eq!(balancer.predicted_wait(0, MS(500)), MS(50));
        // Zero-wait grants decay it geometrically (integer EWMA).
        balancer.note_grant(0, Duration::ZERO, MS(10), MS(70));
        assert!(balancer.predicted_wait(0, MS(500)) < MS(50));
    }

    #[test]
    fn parked_queue_depth_prices_the_backlog() {
        let mut balancer = Balancer::new(1);
        balancer.note_grant(0, Duration::ZERO, MS(20), MS(20));
        balancer.set_queue_depth(0, 3);
        // 3 parked requests at the 20ms service EWMA.
        assert_eq!(balancer.predicted_wait(0, MS(100)), MS(60));
        balancer.set_queue_depth(0, 0);
        assert_eq!(balancer.predicted_wait(0, MS(100)), Duration::ZERO);
    }

    #[test]
    fn out_of_range_servers_are_inert() {
        let mut balancer = Balancer::new(1);
        balancer.note_grant(9, MS(1), MS(1), MS(1));
        balancer.set_queue_depth(9, 7);
        assert_eq!(balancer.predicted_wait(9, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn drr_round_robins_equal_tenants() {
        let mut drr = DrrScheduler::new(MS(5));
        let waiting = [0usize, 1, 2];
        let mut order = Vec::new();
        for _ in 0..6 {
            let t = drr.pick(&waiting).unwrap();
            drr.charge(t, MS(5));
            order.push(t);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn drr_throttles_a_chatty_tenant_proportionally() {
        // Tenant 0's grants cost 5x tenant 1's: fair share must grant
        // tenant 1 roughly 5x as often, and never starve either.
        let mut drr = DrrScheduler::new(MS(1));
        let waiting = [0usize, 1];
        let mut served = [0usize; 2];
        for _ in 0..60 {
            let t = drr.pick(&waiting).unwrap();
            drr.charge(t, if t == 0 { MS(5) } else { MS(1) });
            served[t] += 1;
        }
        assert!(served[0] >= 8, "heavy tenant starved: {served:?}");
        assert!(
            served[1] >= 3 * served[0],
            "light tenant not favored: {served:?}"
        );
    }

    #[test]
    fn drr_pick_is_deterministic_in_waiting_order() {
        let mut a = DrrScheduler::new(MS(2));
        let mut b = DrrScheduler::new(MS(2));
        assert_eq!(a.pick(&[2, 0, 1]), b.pick(&[0, 1, 2]));
        assert_eq!(a.pick(&[]), None);
    }

    #[test]
    fn jain_brackets_even_and_monopolized_splits() {
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0, 0.0]), 1.0);
        assert!((jain(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        let monopoly = jain(&[9.0, 0.0, 0.0]);
        assert!((monopoly - 1.0 / 3.0).abs() < 1e-12);
        let skewed = jain(&[4.0, 1.0, 1.0]);
        assert!(monopoly < skewed && skewed < 1.0);
    }
}
