//! Proactive link-health prediction suite (ISSUE 5 tentpole).
//!
//! The contract under test:
//!
//! 1. **Prediction off (the default) is the reactive path, bit for bit** —
//!    every scenario and session replays the PR-4 behaviour exactly,
//!    traces included.
//! 2. **Prediction on with a healthy link changes nothing but markers** —
//!    instant `predict:*` events appear, and every timing, byte count and
//!    result stays identical to the reactive run.
//! 3. **Prediction on with a degrading link goes local *before* paying**
//!    — once the windowed fault rate and collapsed bandwidth estimate say
//!    the offload loses after its expected backoff penalty, the round
//!    completes locally proactively: no retry budget burns, and the total
//!    fault + backoff time strictly drops against the reactive run.
//! 4. **Predictions are deterministic and serializable** — identical fault
//!    schedules yield identical `LinkPrediction`s, floored estimators
//!    yield finite monotone migration predictions, and `Predict` /
//!    `ProactiveLocal` events survive the JSONL round trip.

use snapedge_core::prelude::*;
use snapedge_core::Decision;
use snapedge_net::BandwidthEstimator;
use snapedge_rng::Rng;
use std::time::Duration;

fn secs(s: f64) -> Duration {
    Duration::from_secs_f64(s)
}

/// Chronological starts of the primary uplink's wire transfers.
fn uplink_transfer_starts(trace: &Trace) -> Vec<Duration> {
    let mut v: Vec<_> = trace
        .events()
        .iter()
        .filter(|e| e.name == "uplink" && e.kind == EventKind::Transfer)
        .map(|e| e.start)
        .collect();
    v.sort();
    v
}

fn names_of_kind(trace: &Trace, kind: EventKind) -> Vec<String> {
    trace
        .events()
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.name.clone())
        .collect()
}

/// Everything in `trace` except the instant `Predict` markers — the only
/// thing a correct-but-agreeing predictor is allowed to add to a run.
fn without_predict_events(trace: &Trace) -> Vec<Event> {
    trace
        .events()
        .iter()
        .filter(|e| e.kind != EventKind::Predict)
        .cloned()
        .collect()
}

/// A lenient retry policy whose backoff is expensive enough that the
/// predicted failed-attempt penalty flips GoogLeNet's 23.7 s offload
/// advantage, and whose deadline never expires inside a test.
fn heavy_backoff_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        deadline: secs(600.0),
        backoff_base: secs(10.0),
        backoff_max: secs(40.0),
    }
}

/// The acceptance scenario: a session whose link starts corrupting
/// mid-run. The reactive path burns its retry budget (and its backoff
/// schedule) every round from then on; the predictive path pays once,
/// learns, and goes local proactively — strictly cheaper.
#[test]
fn session_predicts_local_before_retry_budget_exhaustion() {
    // Fault-free probe: the virtual instant of round 2's delta upload.
    let mut probe = OffloadSession::new(SessionConfig::paper_builder("googlenet").build()).unwrap();
    let _probe_rounds: Vec<RoundReport> = (1..=3).map(|i| probe.infer(i).unwrap()).collect();
    let starts = uplink_transfer_starts(&probe.trace());
    // Transfers: model pre-send, round-1 full snapshot, round-2 delta, ...
    assert!(starts.len() >= 3);
    let u2 = starts[2];

    // The link corrupts every payload from just before round 2's upload,
    // forever. Round 2 must burn its budget either way (no faults have
    // been *observed* at its click); the runs may only diverge at round 3.
    let plan = FaultPlan::none()
        .corrupt(u2 - secs(0.001), u2 + secs(3600.0))
        .unwrap();
    let run = |predict: bool| {
        let mut session = OffloadSession::new(
            SessionConfig::paper_builder("googlenet")
                .faults(plan.clone())
                .retry(heavy_backoff_policy())
                .predict(predict)
                .build(),
        )
        .unwrap();
        let rounds: Vec<RoundReport> = (1..=3).map(|i| session.infer(i).unwrap()).collect();
        (rounds, session.trace())
    };
    let (reactive, reactive_trace) = run(false);
    let (predictive, predictive_trace) = run(true);

    // Rounds 1-2 are identical in every observable: the round-2 gate saw a
    // clean window (the faults had not happened yet) and agreed with the
    // offload, so both runs burn the same round-2 budget.
    for i in 0..2 {
        assert_eq!(predictive[i].total, reactive[i].total, "round {}", i + 1);
        assert_eq!(predictive[i].up_bytes, reactive[i].up_bytes);
        assert_eq!(predictive[i].result, reactive[i].result);
        assert_eq!(predictive[i].fell_back, reactive[i].fell_back);
    }
    assert!(reactive[1].fell_back, "round 2 exhausts the budget");
    assert!(!reactive[1].proactive);

    // Round 3 reactive: the pool re-qualifies the server, re-burns the
    // whole budget, and falls back again. Round 3 predictive: the window
    // now holds round 2's fault observations and the halved estimate —
    // the gate goes local before a single byte (or backoff) is spent.
    assert!(reactive[2].fell_back);
    assert!(predictive[2].proactive, "round 3 must be proactive");
    assert!(!predictive[2].fell_back, "proactive is not a fallback");
    assert_eq!(predictive[2].prediction, Some(Decision::Local));
    assert_eq!(predictive[2].server, "client");
    assert_eq!(predictive[2].result, reactive[2].result);
    assert!(
        predictive[2].total < reactive[2].total,
        "proactive round must be cheaper: {:?} vs {:?}",
        predictive[2].total,
        reactive[2].total
    );

    // The whole point: total fault + backoff time strictly drops.
    let cost = |t: &Trace| {
        t.duration_of_kind(EventKind::Fault, None) + t.duration_of_kind(EventKind::Backoff, None)
    };
    assert!(
        cost(&predictive_trace) < cost(&reactive_trace),
        "predictive fault+backoff {:?} must beat reactive {:?}",
        cost(&predictive_trace),
        cost(&reactive_trace)
    );

    // The decisions are observable in the trace.
    assert!(
        names_of_kind(&predictive_trace, EventKind::Predict).contains(&"predict:local".to_string())
    );
    assert_eq!(
        names_of_kind(&predictive_trace, EventKind::ProactiveLocal),
        vec!["proactive_local".to_string()]
    );
    assert!(names_of_kind(&reactive_trace, EventKind::Predict).is_empty());
    assert!(names_of_kind(&reactive_trace, EventKind::ProactiveLocal).is_empty());
}

/// The scenario runner honours the same gate: presend-time corruption
/// seeds the health window, and the predictive run goes local at the
/// click — before the reactive run's doomed migration attempts.
#[test]
fn scenario_with_degraded_presend_goes_proactively_local() {
    let policy = RetryPolicy {
        max_attempts: 4,
        deadline: secs(600.0),
        backoff_base: secs(30.0),
        backoff_max: secs(60.0),
    };
    // Corruption covers the model pre-send's first attempts; it clears in
    // time for a late attempt to get the model (and its ACK) through.
    let presend_corrupt = FaultPlan::none()
        .corrupt(Duration::ZERO, secs(20.0))
        .unwrap();
    let probe = run_scenario(
        &ScenarioConfig::paper_builder("googlenet")
            .up_faults(presend_corrupt.clone())
            .retry(policy.clone())
            .build(),
    )
    .unwrap();
    assert!(probe.retry_count() > 0, "the pre-send must have struggled");
    assert!(!probe.fell_back);
    // The snapshot upload is the last uplink transfer of the clean run.
    let snap_up = *uplink_transfer_starts(&probe.trace).last().unwrap();

    // Final plan: the same presend corruption, plus corruption forever
    // from just before the snapshot would ship.
    let plan = presend_corrupt
        .corrupt(snap_up - secs(0.001), snap_up + secs(3600.0))
        .unwrap();
    let run = |predict: bool| {
        run_scenario(
            &ScenarioConfig::paper_builder("googlenet")
                .up_faults(plan.clone())
                .retry(policy.clone())
                .predict(predict)
                .build(),
        )
        .unwrap()
    };
    let reactive = run(false);
    let predictive = run(true);

    assert!(reactive.fell_back, "reactive exhausts the snapshot budget");
    assert!(!reactive.proactive);
    assert!(predictive.proactive, "the gate must fire at the click");
    assert!(!predictive.fell_back);
    assert_eq!(predictive.prediction, Some(Decision::Local));
    assert_eq!(predictive.result, reactive.result);

    let cost = |r: &ScenarioReport| r.fault_time() + r.backoff_time();
    assert!(
        cost(&predictive) < cost(&reactive),
        "predictive fault+backoff {:?} must beat reactive {:?}",
        cost(&predictive),
        cost(&reactive)
    );
    assert!(predictive.total < reactive.total);
    assert!(names_of_kind(&predictive.trace, EventKind::ProactiveLocal).len() == 1);
    assert!(names_of_kind(&reactive.trace, EventKind::ProactiveLocal).is_empty());
}

/// A predictor that agrees with the offload must change *nothing* but the
/// instant `predict:*` markers: same rounds, same bytes, same virtual
/// times, same trace minus those markers.
#[test]
fn healthy_link_prediction_is_marker_only() {
    let run = |predict: bool| {
        let mut session = OffloadSession::new(
            SessionConfig::paper_builder("googlenet")
                .predict(predict)
                .build(),
        )
        .unwrap();
        let rounds: Vec<RoundReport> = (1..=3).map(|i| session.infer(i).unwrap()).collect();
        (rounds, session.trace())
    };
    let (reactive, reactive_trace) = run(false);
    let (predictive, predictive_trace) = run(true);

    for (p, r) in predictive.iter().zip(&reactive) {
        assert_eq!(p.total, r.total, "round {}", r.round);
        assert_eq!(p.up_bytes, r.up_bytes);
        assert_eq!(p.down_bytes, r.down_bytes);
        assert_eq!(p.delta_up, r.delta_up);
        assert_eq!(p.result, r.result);
        assert_eq!(p.server, r.server);
        assert!(!p.fell_back && !p.proactive);
        // GoogLeNet on a healthy 30 Mbps link: the gate agrees with the
        // offload every round.
        assert_eq!(p.prediction, Some(Decision::FullOffload));
        assert_eq!(r.prediction, None);
    }
    assert_eq!(
        without_predict_events(&predictive_trace),
        reactive_trace.events().to_vec(),
        "the predictor may only add instant Predict markers"
    );
    assert_eq!(
        names_of_kind(&predictive_trace, EventKind::Predict).len(),
        3,
        "one marker per round"
    );
    assert!(names_of_kind(&predictive_trace, EventKind::ProactiveLocal).is_empty());
}

/// Prediction off is not merely similar to the pre-predictor path — it is
/// the same configuration value, and the chaos matrix replays identically
/// whether the knob is spelled out or left at its default.
#[test]
fn predict_off_is_bit_identical_across_the_chaos_seed_matrix() {
    for seed in [1u64, 3, 8] {
        let plan = FaultPlan::chaos(seed, secs(1.0));
        let implicit = SessionConfig::tiny_builder()
            .faults(plan.clone())
            .retry(RetryPolicy::default())
            .build();
        let explicit = SessionConfig::tiny_builder()
            .faults(plan)
            .retry(RetryPolicy::default())
            .predict(false)
            .build();
        assert_eq!(implicit, explicit, "seed {seed}: predict defaults off");

        let run = |cfg: SessionConfig| {
            let mut session = OffloadSession::new(cfg).unwrap();
            let rounds: Vec<RoundReport> = (1..=3).map(|i| session.infer(i).unwrap()).collect();
            (rounds, session.trace())
        };
        let (a_rounds, a_trace) = run(implicit);
        let (b_rounds, b_trace) = run(explicit);
        assert_eq!(a_rounds, b_rounds, "seed {seed}: rounds diverged");
        assert_eq!(a_trace, b_trace, "seed {seed}: traces diverged");
        assert!(names_of_kind(&a_trace, EventKind::Predict).is_empty());
        assert!(names_of_kind(&a_trace, EventKind::ProactiveLocal).is_empty());
    }
}

/// `Predict` and `ProactiveLocal` events from a *real* predictive run
/// survive the JSONL export/import round trip.
#[test]
fn predictive_run_trace_round_trips_through_jsonl() {
    let mut probe = OffloadSession::new(SessionConfig::paper_builder("googlenet").build()).unwrap();
    let _r: Vec<RoundReport> = (1..=2).map(|i| probe.infer(i).unwrap()).collect();
    let u2 = uplink_transfer_starts(&probe.trace())[2];
    let plan = FaultPlan::none()
        .corrupt(u2 - secs(0.001), u2 + secs(3600.0))
        .unwrap();
    let mut session = OffloadSession::new(
        SessionConfig::paper_builder("googlenet")
            .faults(plan)
            .retry(heavy_backoff_policy())
            .predict(true)
            .build(),
    )
    .unwrap();
    let rounds: Vec<RoundReport> = (1..=3).map(|i| session.infer(i).unwrap()).collect();
    assert!(rounds.iter().any(|r| r.proactive), "need a proactive round");

    let trace = session.trace();
    let jsonl = trace.to_jsonl();
    assert!(jsonl.contains("\"kind\":\"predict\""));
    assert!(jsonl.contains("\"kind\":\"proactive_local\""));
    let parsed = Trace::from_jsonl(&jsonl).unwrap();
    assert_eq!(parsed, trace, "JSONL round trip must be lossless");
}

/// Property: however hard a server's estimator has been penalized, the
/// floor keeps `predicted_migration` finite, and predictions stay
/// monotone in the payload size.
#[test]
fn floored_estimator_keeps_migration_predictions_finite_and_monotone() {
    let mut rng = Rng::seed_from_u64(0x5EED_CAFE);
    for trial in 0..16u32 {
        let spec = ServerSpec::new("edge", edge_server_x86(), LinkConfig::wifi_30mbps());
        let mut pool = ServerPool::new(vec![spec]);
        // One real sample so penalties have something to chew on, then a
        // random (seeded) storm of fault observations drives the estimate
        // into the floor.
        let mut link = Link::new(LinkConfig::wifi_30mbps());
        let xfer = link.schedule(Duration::ZERO, 500_000).unwrap();
        pool.observe_transfer(0, &xfer);
        let storms = rng.gen_range_usize(50, 800);
        let mut at = xfer.finish;
        for _ in 0..storms {
            let burst = rng.gen_range_usize(1, 5);
            at += Duration::from_millis(rng.gen_range_u64(1, 250));
            pool.observe_faults(0, burst, at);
        }
        let estimate = pool
            .health(0)
            .unwrap()
            .estimator()
            .estimate_bps()
            .expect("the sample survives any number of penalties");
        assert!(estimate.is_finite() && estimate > 0.0, "trial {trial}");

        let mut last = Duration::ZERO;
        for pending in [0u64, 1_000, 50_000, 1_000_000, 50_000_000] {
            let t = pool.predicted_migration(0, pending, 0);
            assert!(t < Duration::MAX, "trial {trial}: pending {pending}");
            assert!(
                t >= last,
                "trial {trial}: prediction must grow with payload ({t:?} < {last:?})"
            );
            last = t;
        }
    }
}

/// Property: identical fault schedules produce identical predictions —
/// the predictor is a pure function of its observation history.
#[test]
fn link_health_predictions_are_deterministic_across_identical_schedules() {
    for seed in [7u64, 99, 0xDEAD] {
        let schedule = |seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let mut health = LinkHealth::new(BandwidthEstimator::new(0.3));
            let mut now = Duration::ZERO;
            for _ in 0..200 {
                now += Duration::from_millis(rng.gen_range_u64(5, 2_000));
                if rng.next_bool() {
                    let bytes = rng.gen_range_u64(1_000, 2_000_000);
                    let elapsed = Duration::from_millis(rng.gen_range_u64(1, 500));
                    health.observe_success(now, bytes, elapsed);
                } else {
                    health.observe_faults(rng.gen_range_usize(1, 4), now);
                }
            }
            (health.predict(now), health.predict(now + secs(10.0)))
        };
        let (a_now, a_later) = schedule(seed);
        let (b_now, b_later) = schedule(seed);
        assert_eq!(a_now, b_now, "seed {seed}");
        assert_eq!(a_later, b_later, "seed {seed}");
        assert!(a_now.fault_rate >= 0.0 && a_now.fault_rate <= 1.0);
        assert!(a_now.predicted_retries <= 8, "retries are capped");
    }
}
