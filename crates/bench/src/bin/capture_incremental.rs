//! Micro-benchmark — dirty-tracked incremental delta capture vs the
//! legacy full walk.
//!
//! [`Browser::state_base`] records a reachability index and resets the
//! write-barrier dirty sets; incremental capture then deep-compares only
//! globals that were rebound (or that rooted a dirtied heap cell) since
//! the base. This bench holds a growing ballast of untouched array
//! globals, mutates one counter per round, and times capture with
//! `SnapshotOptions::incremental` on and off. Report-only: numbers are
//! host-dependent and nothing gates on them, but the emitted scripts
//! must stay byte-identical.
//!
//! ```sh
//! cargo run --release -p snapedge-bench --bin capture_incremental
//! ```

use snapedge_bench::print_table;
use snapedge_webapp::{Browser, DeltaCapture, SnapshotOptions, StateBase, WebError};
use std::time::Instant;

/// Captures per timed sample (the per-capture cost is microseconds).
const ITERS: u32 = 200;

/// A page holding `held` ballast arrays of `cells` numbers each, plus one
/// counter that the `tick` handler increments.
fn ballast_app(held: usize, cells: usize) -> String {
    let mut script = String::new();
    for i in 0..held {
        script.push_str(&format!("var held{i} = ["));
        for j in 0..cells {
            if j > 0 {
                script.push(',');
            }
            script.push_str(&format!("{}", (i * cells + j) % 97));
        }
        script.push_str("];\n");
    }
    script.push_str(
        "var counter = 0;\n\
         function onTick() { counter = counter + 1; }\n\
         document.getElementById(\"btn\").addEventListener(\"tick\", onTick);\n",
    );
    format!("<html><body>\n<button id=\"btn\">go</button>\n</body>\n<script>\n{script}</script></html>\n")
}

fn time_captures(
    browser: &mut Browser,
    base: &StateBase,
    options: &SnapshotOptions,
) -> Result<(f64, String), WebError> {
    let mut script = String::new();
    let start = Instant::now();
    for _ in 0..ITERS {
        match browser.capture_delta(base, options)? {
            DeltaCapture::Delta(d) => script = d.script().to_string(),
            DeltaCapture::FullRequired { reason } => {
                return Err(WebError::Snapshot(format!("delta refused: {reason}")))
            }
        }
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS);
    Ok((micros, script))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Dirty-tracked incremental delta capture vs full walk (report-only)\n");
    let mut rows = Vec::new();
    for held in [16usize, 64, 256] {
        let mut browser = Browser::new();
        browser.load_html(&ballast_app(held, 64))?;
        browser.run_until_idle()?;
        let base = browser.state_base();
        browser.dispatch("btn", "tick")?;
        browser.run_until_idle()?;

        let legacy = SnapshotOptions {
            incremental: false,
            ..SnapshotOptions::default()
        };
        let (full_us, full_script) = time_captures(&mut browser, &base, &legacy)?;
        let (inc_us, inc_script) = time_captures(&mut browser, &base, &SnapshotOptions::default())?;
        assert_eq!(
            full_script, inc_script,
            "incremental capture must stay bit-identical"
        );

        rows.push(vec![
            held.to_string(),
            "1".to_string(),
            format!("{full_us:.1}"),
            format!("{inc_us:.1}"),
            format!("{:.1}x", full_us / inc_us),
        ]);
    }
    print_table(
        &[
            "held globals",
            "mutated",
            "full (us)",
            "incremental (us)",
            "speedup",
        ],
        &rows,
        &[12, 7, 9, 16, 8],
    );
    println!("\nscripts byte-identical across modes; capture cost scales with state changed");
    Ok(())
}
