//! Scope resolution, def-use recording, reachability, and the
//! snapshot-specific lints over a parsed MiniJS program.
//!
//! MiniJS scoping is deliberately simple (the paper's subset): functions
//! have no closures, so a name inside a function resolves to the
//! function's own params/`var` locals, then to globals, then to declared
//! functions, then to the host surface. Assigning to a name that is not a
//! local *creates a global* at runtime — the analyzer therefore treats
//! every non-local assignment target as a global definition site
//! (flow-insensitively), which is exactly how generated restore scripts
//! re-establish app globals.

use crate::hostapi;
use crate::{AnalysisOptions, AnalysisStats, Diagnostic, Mode, Rule, Severity};
use snapedge_webapp::ast::{Expr, FunctionDef, Stmt};
use snapedge_webapp::is_reserved_machinery;
use std::collections::{BTreeMap, BTreeSet};

/// Where a read happened: top-level code or a named function body.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ctx {
    TopLevel,
    Func(String),
}

/// One function's own scope: parameters plus hoisted `var` locals.
#[derive(Debug, Default)]
struct FuncScope {
    params: BTreeSet<String>,
    locals: BTreeSet<String>,
}

impl FuncScope {
    fn contains(&self, name: &str) -> bool {
        self.params.contains(name) || self.locals.contains(name)
    }
}

/// All declarations visible at global scope.
#[derive(Debug, Default)]
struct Declarations {
    /// Function name → its scope. Nested declarations register globally
    /// when executed, so they are collected recursively. Built once per
    /// verification, keyed by report-visible names.
    /// lint: allow(string-keyed-map)
    functions: BTreeMap<String, FuncScope>,
    /// Global variables: top-level `var`s plus non-local assignment
    /// targets anywhere.
    globals: BTreeSet<String>,
}

pub(crate) struct Analysis<'a> {
    opts: &'a AnalysisOptions,
    decls: Declarations,
    hosts: BTreeSet<String>,
    ambient: BTreeSet<String>,
    /// Global name → contexts that read it.
    /// lint: allow(string-keyed-map)
    reads: BTreeMap<String, Vec<Ctx>>,
    /// Function → functions it references.
    /// lint: allow(string-keyed-map)
    calls: BTreeMap<String, BTreeSet<String>>,
    /// Functions referenced from top-level code.
    toplevel_refs: BTreeSet<String>,
    /// Functions installed as event handlers via `addEventListener`.
    handlers: BTreeSet<String>,
    pub(crate) diagnostics: Vec<Diagnostic>,
}

impl<'a> Analysis<'a> {
    pub(crate) fn run(
        program: &[Stmt],
        opts: &'a AnalysisOptions,
    ) -> (Vec<Diagnostic>, AnalysisStats) {
        let mut hosts: BTreeSet<String> = hostapi::HOST_GLOBALS
            .iter()
            .map(|s| s.to_string())
            .collect();
        hosts.extend(opts.hosts.iter().cloned());
        let mut a = Analysis {
            opts,
            decls: Declarations::default(),
            hosts,
            ambient: opts.ambient.iter().cloned().collect(),
            reads: BTreeMap::new(),
            calls: BTreeMap::new(),
            toplevel_refs: BTreeSet::new(),
            handlers: BTreeSet::new(),
            diagnostics: Vec::new(),
        };
        a.collect_declarations(program);
        a.collect_global_assign_targets(program, &Ctx::TopLevel);
        a.check_hygiene();
        a.resolve_block(program, &Ctx::TopLevel);
        let reachable = a.reachable_functions();
        a.check_dead_state(&reachable);
        let stats = AnalysisStats {
            functions: a.decls.functions.len(),
            globals: a.decls.globals.len(),
            handlers: a.handlers.len(),
            reachable_functions: reachable.len(),
        };
        (a.diagnostics, stats)
    }

    // ---- Pass 1: declarations. ----

    fn collect_declarations(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Var(name, _) => {
                    // Top-level `var` (at any control-flow nesting depth —
                    // `var` is function-scoped, and this is the top level).
                    self.decls.globals.insert(name.to_string());
                }
                Stmt::Function(def) => self.collect_function(def),
                Stmt::If(_, then, els) => {
                    self.collect_declarations(then);
                    self.collect_declarations(els);
                }
                Stmt::While(_, body) => self.collect_declarations(body),
                Stmt::For {
                    init, update, body, ..
                } => {
                    if let Some(s) = init {
                        self.collect_declarations(std::slice::from_ref(s));
                    }
                    if let Some(s) = update {
                        self.collect_declarations(std::slice::from_ref(s));
                    }
                    self.collect_declarations(body);
                }
                Stmt::Assign(..) | Stmt::Expr(_) | Stmt::Return(_) => {}
            }
        }
    }

    fn collect_function(&mut self, def: &FunctionDef) {
        let mut scope = FuncScope::default();
        scope
            .params
            .extend(def.params.iter().map(|p| p.to_string()));
        collect_vars_shallow(&def.body, &mut scope.locals);
        self.decls.functions.insert(def.name.to_string(), scope);
        // Nested function declarations register globally when the
        // enclosing function runs; collect them too.
        collect_nested_functions(&def.body, self);
    }

    /// Pass 1b: non-local assignment targets create globals at runtime
    /// (this is how `__snapedge_restore` re-establishes app state).
    fn collect_global_assign_targets(&mut self, stmts: &[Stmt], ctx: &Ctx) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign(Expr::Ident(name), _)
                    if !self.is_local(name, ctx) && !self.hosts.contains(name.as_str()) =>
                {
                    self.decls.globals.insert(name.to_string());
                }
                Stmt::Function(def) => {
                    let ctx = Ctx::Func(def.name.to_string());
                    self.collect_global_assign_targets(&def.body, &ctx);
                }
                Stmt::If(_, then, els) => {
                    self.collect_global_assign_targets(then, ctx);
                    self.collect_global_assign_targets(els, ctx);
                }
                Stmt::While(_, body) => self.collect_global_assign_targets(body, ctx),
                Stmt::For {
                    init, update, body, ..
                } => {
                    if let Some(s) = init {
                        self.collect_global_assign_targets(std::slice::from_ref(s), ctx);
                    }
                    if let Some(s) = update {
                        self.collect_global_assign_targets(std::slice::from_ref(s), ctx);
                    }
                    self.collect_global_assign_targets(body, ctx);
                }
                _ => {}
            }
        }
    }

    // ---- Hygiene: reserved-prefix names. ----

    fn check_hygiene(&mut self) {
        if self.opts.mode != Mode::App {
            return;
        }
        // The parser already rejects non-machinery reserved names; an
        // *app* must not declare the machinery names either — those
        // belong to generated snapshots.
        let declared: Vec<String> = self
            .decls
            .functions
            .keys()
            .chain(self.decls.globals.iter())
            .filter(|n| is_reserved_machinery(n))
            .cloned()
            .collect();
        for name in declared {
            self.diagnostics.push(Diagnostic {
                rule: Rule::ReservedPrefix,
                severity: Severity::Error,
                message: format!("app declares snapshot machinery name {name:?}"),
                name: Some(name),
                line: None,
            });
        }
    }

    // ---- Pass 2: resolve reads, record def-use, check host API. ----

    fn is_local(&self, name: &str, ctx: &Ctx) -> bool {
        match ctx {
            Ctx::TopLevel => false,
            Ctx::Func(f) => self
                .decls
                .functions
                .get(f)
                .map(|s| s.contains(name))
                .unwrap_or(false),
        }
    }

    fn resolve_block(&mut self, stmts: &[Stmt], ctx: &Ctx) {
        for stmt in stmts {
            match stmt {
                Stmt::Var(_, init) => {
                    if let Some(e) = init {
                        self.resolve_expr(e, ctx);
                    }
                }
                Stmt::Assign(target, value) => {
                    // The target of a plain identifier assignment is a
                    // definition, not a read; member/index targets read
                    // their receiver.
                    match target {
                        Expr::Ident(_) => {}
                        Expr::Member(obj, prop) => {
                            self.check_member_write(obj, prop, ctx);
                            self.resolve_expr(obj, ctx);
                        }
                        Expr::Index(obj, idx) => {
                            self.resolve_expr(obj, ctx);
                            self.resolve_expr(idx, ctx);
                        }
                        other => self.resolve_expr(other, ctx),
                    }
                    self.resolve_expr(value, ctx);
                }
                Stmt::Expr(e) => self.resolve_expr(e, ctx),
                Stmt::Function(def) => {
                    let inner = Ctx::Func(def.name.to_string());
                    self.resolve_block(&def.body, &inner);
                }
                Stmt::Return(e) => {
                    if let Some(e) = e {
                        self.resolve_expr(e, ctx);
                    }
                }
                Stmt::If(cond, then, els) => {
                    self.resolve_expr(cond, ctx);
                    self.resolve_block(then, ctx);
                    self.resolve_block(els, ctx);
                }
                Stmt::While(cond, body) => {
                    self.resolve_expr(cond, ctx);
                    self.resolve_block(body, ctx);
                }
                Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                } => {
                    if let Some(s) = init {
                        self.resolve_block(std::slice::from_ref(s), ctx);
                    }
                    if let Some(e) = cond {
                        self.resolve_expr(e, ctx);
                    }
                    if let Some(s) = update {
                        self.resolve_block(std::slice::from_ref(s), ctx);
                    }
                    self.resolve_block(body, ctx);
                }
            }
        }
    }

    fn resolve_expr(&mut self, expr: &Expr, ctx: &Ctx) {
        match expr {
            Expr::Ident(name) => self.resolve_read(name, ctx),
            Expr::Array(elems) => {
                for e in elems {
                    self.resolve_expr(e, ctx);
                }
            }
            Expr::Object(props) => {
                for (_, e) in props {
                    self.resolve_expr(e, ctx);
                }
            }
            Expr::NewFloat32Array(e) | Expr::Unary(_, e) => self.resolve_expr(e, ctx),
            Expr::Member(obj, prop) => {
                self.check_member(obj, prop, None, ctx);
                self.resolve_expr(obj, ctx);
            }
            Expr::Index(obj, idx) => {
                self.resolve_expr(obj, ctx);
                self.resolve_expr(idx, ctx);
            }
            Expr::Call(callee, args) => {
                if let Expr::Member(obj, method) = callee.as_ref() {
                    self.check_member(obj, method, Some(args), ctx);
                    self.resolve_expr(obj, ctx);
                    // `addEventListener(event, handler)` installs an event
                    // handler: a reachability root.
                    if method == "addEventListener" {
                        if let Some(Expr::Ident(handler)) = args.get(1) {
                            self.handlers.insert(handler.to_string());
                        }
                    }
                } else {
                    self.resolve_expr(callee, ctx);
                }
                for a in args {
                    self.resolve_expr(a, ctx);
                }
            }
            Expr::Binary(_, l, r) => {
                self.resolve_expr(l, ctx);
                self.resolve_expr(r, ctx);
            }
            Expr::Undefined | Expr::Null | Expr::Bool(_) | Expr::Number(_) | Expr::Str(_) => {}
        }
    }

    /// Resolves an identifier read in runtime lookup order: locals,
    /// globals, functions, hosts, then (delta mode) the agreed base's
    /// ambient declarations. Anything else is a free identifier — the
    /// snapshot is not self-contained.
    fn resolve_read(&mut self, name: &str, ctx: &Ctx) {
        if self.is_local(name, ctx) {
            return;
        }
        if self.decls.globals.contains(name) {
            self.reads
                .entry(name.to_string())
                .or_default()
                .push(ctx.clone());
            return;
        }
        if self.decls.functions.contains_key(name) {
            match ctx {
                Ctx::TopLevel => {
                    self.toplevel_refs.insert(name.to_string());
                }
                Ctx::Func(f) => {
                    self.calls
                        .entry(f.clone())
                        .or_default()
                        .insert(name.to_string());
                }
            }
            return;
        }
        if self.hosts.contains(name) || self.ambient.contains(name) {
            return;
        }
        self.diagnostics.push(Diagnostic {
            rule: Rule::FreeIdentifier,
            severity: Severity::Error,
            message: format!(
                "free identifier {name:?}: not a local, global, declared function, \
                 or documented host API{}",
                match ctx {
                    Ctx::TopLevel => String::new(),
                    Ctx::Func(f) => format!(" (in function {f:?})"),
                }
            ),
            name: Some(name.to_string()),
            line: None,
        });
    }

    /// Checks member access / method calls against the documented host
    /// API surface when the receiver's kind is statically known.
    fn check_member(&mut self, obj: &Expr, prop: &str, call_args: Option<&[Expr]>, ctx: &Ctx) {
        let is_call = call_args.is_some();
        // Receiver is a host global (unshadowed by a local or app global).
        if let Expr::Ident(name) = obj {
            if self.is_local(name, ctx)
                || self.decls.globals.contains(name.as_str())
                || self.decls.functions.contains_key(name.as_str())
            {
                return; // shadowed: not the host object
            }
            let surface: Option<(&[&str], &[&str])> = match name.as_str() {
                "document" => Some((hostapi::DOCUMENT_METHODS, hostapi::DOCUMENT_PROPS)),
                "console" => Some((hostapi::CONSOLE_METHODS, &[])),
                "Math" => Some((hostapi::MATH_METHODS, hostapi::MATH_PROPS)),
                // Registered host objects (e.g. `model`) define their own
                // surface; the embedder vouches for it.
                _ => None,
            };
            if let Some((methods, props)) = surface {
                let table = if is_call { methods } else { props };
                if !table.contains(&prop) {
                    self.unknown_api(name, prop, is_call);
                }
            }
            return;
        }
        // Receiver is a statically recognizable DOM element handle.
        if self.is_dom_expr(obj, ctx) {
            let table = if is_call {
                hostapi::DOM_METHODS
            } else {
                hostapi::DOM_PROPS
            };
            if !table.contains(&prop) {
                self.unknown_api("element", prop, is_call);
            }
        }
    }

    /// Checks a member *assignment* target. Host globals have no
    /// assignable properties at all; DOM elements only accept
    /// `textContent`.
    fn check_member_write(&mut self, obj: &Expr, prop: &str, ctx: &Ctx) {
        if let Expr::Ident(name) = obj {
            let shadowed = self.is_local(name, ctx)
                || self.decls.globals.contains(name.as_str())
                || self.decls.functions.contains_key(name.as_str());
            if !shadowed && self.hosts.contains(name.as_str()) {
                self.diagnostics.push(Diagnostic {
                    rule: Rule::UnknownHostApi,
                    severity: Severity::Error,
                    message: format!("host object {name} has no assignable property {prop:?}"),
                    name: Some(prop.to_string()),
                    line: None,
                });
            }
            return;
        }
        if self.is_dom_expr(obj, ctx) && !hostapi::DOM_WRITABLE_PROPS.contains(&prop) {
            self.diagnostics.push(Diagnostic {
                rule: Rule::UnknownHostApi,
                severity: Severity::Error,
                message: format!(
                    "cannot assign element property {prop:?} (only \"textContent\" is writable)"
                ),
                name: Some(prop.to_string()),
                line: None,
            });
        }
    }

    fn unknown_api(&mut self, receiver: &str, prop: &str, is_call: bool) {
        let what = if is_call { "method" } else { "property" };
        self.diagnostics.push(Diagnostic {
            rule: Rule::UnknownHostApi,
            severity: Severity::Error,
            message: format!(
                "unknown {what} {prop:?} on {receiver}: outside the documented host API surface"
            ),
            name: Some(prop.to_string()),
            line: None,
        });
    }

    /// `true` when the expression definitely evaluates to a DOM element:
    /// `document.getElementById(..)`, `document.createElement(..)`, or
    /// `document.body` (with `document` unshadowed).
    fn is_dom_expr(&self, expr: &Expr, ctx: &Ctx) -> bool {
        let document_unshadowed = |name: &str| {
            name == "document"
                && !self.is_local(name, ctx)
                && !self.decls.globals.contains(name)
                && !self.decls.functions.contains_key(name)
        };
        match expr {
            Expr::Call(callee, _) => match callee.as_ref() {
                Expr::Member(obj, m) => {
                    matches!(obj.as_ref(), Expr::Ident(n) if document_unshadowed(n))
                        && (m == "getElementById" || m == "createElement")
                }
                _ => false,
            },
            Expr::Member(obj, p) => {
                matches!(obj.as_ref(), Expr::Ident(n) if document_unshadowed(n)) && p == "body"
            }
            _ => false,
        }
    }

    // ---- Pass 3: reachability and dead state. ----

    /// Functions reachable from event handlers and top-level code, over
    /// the function-reference graph.
    fn reachable_functions(&self) -> BTreeSet<String> {
        let mut reachable: BTreeSet<String> = BTreeSet::new();
        let mut work: Vec<String> = self
            .handlers
            .iter()
            .chain(self.toplevel_refs.iter())
            .filter(|f| self.decls.functions.contains_key(*f))
            .cloned()
            .collect();
        while let Some(f) = work.pop() {
            if !reachable.insert(f.clone()) {
                continue;
            }
            if let Some(next) = self.calls.get(&f) {
                for g in next {
                    if !reachable.contains(g) {
                        work.push(g.clone());
                    }
                }
            }
        }
        reachable
    }

    /// Dead state: a captured global that no top-level code and no
    /// handler-reachable function ever reads is pure snapshot bloat — it
    /// serializes, transfers, and restores for nothing.
    fn check_dead_state(&mut self, reachable: &BTreeSet<String>) {
        if self.opts.mode == Mode::Delta {
            // A delta only carries *changed* state; its readers usually
            // live unchanged at the agreed base, so reachability over the
            // delta script alone would be meaningless.
            return;
        }
        let dead: Vec<String> = self
            .decls
            .globals
            .iter()
            .filter(|g| !is_reserved_machinery(g))
            .filter(|g| {
                let live = self.reads.get(*g).map(|ctxs| {
                    ctxs.iter().any(|c| match c {
                        Ctx::TopLevel => true,
                        Ctx::Func(f) => reachable.contains(f),
                    })
                });
                !live.unwrap_or(false)
            })
            .cloned()
            .collect();
        for name in dead {
            self.diagnostics.push(Diagnostic {
                rule: Rule::DeadState,
                severity: Severity::Warning,
                message: format!(
                    "dead state: global {name:?} is never read by top-level code \
                     or any event-handler-reachable function"
                ),
                name: Some(name),
                line: None,
            });
        }
    }
}

/// Hoisted `var` names of one function body: recurses through control
/// flow but not into nested functions (those have their own scope).
fn collect_vars_shallow(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Var(name, _) => {
                out.insert(name.to_string());
            }
            Stmt::If(_, then, els) => {
                collect_vars_shallow(then, out);
                collect_vars_shallow(els, out);
            }
            Stmt::While(_, body) => collect_vars_shallow(body, out),
            Stmt::For {
                init, update, body, ..
            } => {
                if let Some(s) = init {
                    collect_vars_shallow(std::slice::from_ref(s), out);
                }
                if let Some(s) = update {
                    collect_vars_shallow(std::slice::from_ref(s), out);
                }
                collect_vars_shallow(body, out);
            }
            Stmt::Function(_) | Stmt::Assign(..) | Stmt::Expr(_) | Stmt::Return(_) => {}
        }
    }
}

/// Collects function declarations nested inside a function body.
fn collect_nested_functions(stmts: &[Stmt], a: &mut Analysis<'_>) {
    for stmt in stmts {
        match stmt {
            Stmt::Function(def) => a.collect_function(def),
            Stmt::If(_, then, els) => {
                collect_nested_functions(then, a);
                collect_nested_functions(els, a);
            }
            Stmt::While(_, body) => collect_nested_functions(body, a),
            Stmt::For {
                init, update, body, ..
            } => {
                if let Some(s) = init {
                    collect_nested_functions(std::slice::from_ref(s), a);
                }
                if let Some(s) = update {
                    collect_nested_functions(std::slice::from_ref(s), a);
                }
                collect_nested_functions(body, a);
            }
            _ => {}
        }
    }
}
