//! The typed event record.

use std::time::Duration;

/// Which machine an event happened on (or the wire between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// The client board.
    Client,
    /// The network.
    Network,
    /// The edge server.
    Server,
}

impl Lane {
    /// Stable lowercase name (used by the JSON-lines encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            Lane::Client => "client",
            Lane::Network => "network",
            Lane::Server => "server",
        }
    }

    /// Parses the stable name back.
    pub fn parse(s: &str) -> Option<Lane> {
        match s {
            "client" => Some(Lane::Client),
            "network" => Some(Lane::Network),
            "server" => Some(Lane::Server),
            _ => None,
        }
    }
}

/// What kind of work an event covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// DNN (or app) execution.
    Exec,
    /// One layer of a DNN execution (nested under an [`EventKind::Exec`]
    /// span).
    Layer,
    /// Snapshot serialization.
    Capture,
    /// Snapshot parse-and-execute.
    Restore,
    /// Bytes occupying a link (serialization + propagation).
    Transfer,
    /// Waiting for a busy link (FIFO queueing, e.g. a snapshot stuck
    /// behind a still-uploading model).
    Queue,
    /// Compression or decompression CPU time.
    Codec,
    /// Model pre-sending (Section III-B.1 of the paper).
    ModelUpload,
    /// An injected or encountered fault: a link outage stalling a
    /// transfer, a corrupted payload, a degraded window. The span covers
    /// the virtual time the fault cost (instant for a refused transfer).
    Fault,
    /// A re-attempt of a failed operation (instant marker; the re-run
    /// work records its own spans).
    Retry,
    /// Virtual-time sleep between retry attempts (exponential backoff or
    /// waiting out a known outage window).
    Backoff,
    /// Graceful degradation to local execution after the retry budget or
    /// deadline was exhausted (Section IV-A's "better for the client to
    /// execute the DNN locally").
    Fallback,
    /// Static pre-send verification of a captured snapshot (closedness /
    /// determinism analysis). Emitted before any link traffic; a failed
    /// verification rejects the migration without touching the retry
    /// budget.
    Verify,
    /// The fleet picked an edge server (instant marker; the event name
    /// carries the chosen server, e.g. `"server_select:edge-b"`).
    ServerSelect,
    /// An automatic migration to another edge server after the retry
    /// budget against the current one exhausted (instant marker; the
    /// event name carries old and new server, e.g.
    /// `"handoff:edge-a->edge-b"`). The delta agreement is dropped and
    /// the model is re-pre-sent as part of the handoff.
    Handoff,
    /// A proactive link-health prediction consulted before committing
    /// bytes to the wire (instant marker; the event name carries the
    /// predicted decision, e.g. `"predict:local"`).
    Predict,
    /// The runtime chose local execution *proactively* — the health
    /// predictor expected the offload to lose before any retry budget
    /// was spent (instant marker; contrast with [`EventKind::Fallback`],
    /// the reactive path taken after exhaustion).
    ProactiveLocal,
    /// A request joined a busy server's run queue (instant marker
    /// emitted by the fleet engine when an uplinked snapshot finds the
    /// server's CPU occupied by another client).
    Enqueue,
    /// A queued request was admitted to the server CPU (instant marker;
    /// the matching [`EventKind::QueueWait`] span covers the wait).
    Dequeue,
    /// Time a request spent waiting for a busy server CPU — the queueing
    /// delay that emerges from concurrent sessions sharing a fleet
    /// (contrast with [`EventKind::Queue`], which is *link* FIFO
    /// queueing).
    QueueWait,
    /// A per-tenant resource-meter reading after a metered execution
    /// segment (instant marker; `bytes` carries the ops charged in that
    /// segment). Only emitted when metering is enabled, so unmetered
    /// traces are byte-identical to pre-metering runs.
    MeterTick,
    /// A tenant exceeded one of its resource caps and was killed on the
    /// executing server (instant marker; the event name carries the
    /// tripped resource, e.g. `"meter_exhausted:ops"`).
    MeterExhausted,
    /// A static effect-analysis verdict consulted before committing
    /// bytes to the wire (instant marker; the event name carries the
    /// outcome, e.g. `"effect_verdict:nondeterministic"` or
    /// `"effect_verdict:exhaustion"`). Only emitted when effect analysis
    /// is enabled, so default traces are byte-identical to prior runs.
    EffectVerdict,
    /// A queue-aware balancing decision consulted before committing
    /// bytes to the wire (instant marker; the event name carries the
    /// predicted queueing delay, e.g. `"balance_wait:1500us"`). Only
    /// emitted when balancing is enabled, so default traces are
    /// byte-identical to prior runs.
    BalanceDecision,
    /// A compute admission parked behind a busy server under fair-share
    /// scheduling (instant marker). Only emitted when fair share or
    /// batching is enabled.
    AdmitDeferred,
    /// Co-queued inference grants merged into one server-side batch
    /// (instant marker; the event name carries the batch size, e.g.
    /// `"batch:3"`). Only emitted when a batch window is configured.
    BatchFormed,
    /// Anything else (markers, app phases, custom spans).
    Other,
}

impl EventKind {
    /// Stable lowercase name (used by the JSON-lines encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Exec => "exec",
            EventKind::Layer => "layer",
            EventKind::Capture => "capture",
            EventKind::Restore => "restore",
            EventKind::Transfer => "transfer",
            EventKind::Queue => "queue",
            EventKind::Codec => "codec",
            EventKind::ModelUpload => "model_upload",
            EventKind::Fault => "fault",
            EventKind::Retry => "retry",
            EventKind::Backoff => "backoff",
            EventKind::Fallback => "fallback",
            EventKind::Verify => "verify",
            EventKind::ServerSelect => "server_select",
            EventKind::Handoff => "handoff",
            EventKind::Predict => "predict",
            EventKind::ProactiveLocal => "proactive_local",
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::QueueWait => "queue_wait",
            EventKind::MeterTick => "meter_tick",
            EventKind::MeterExhausted => "meter_exhausted",
            EventKind::EffectVerdict => "effect_verdict",
            EventKind::BalanceDecision => "balance_decision",
            EventKind::AdmitDeferred => "admit_deferred",
            EventKind::BatchFormed => "batch_formed",
            EventKind::Other => "other",
        }
    }

    /// Parses the stable name back.
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "exec" => Some(EventKind::Exec),
            "layer" => Some(EventKind::Layer),
            "capture" => Some(EventKind::Capture),
            "restore" => Some(EventKind::Restore),
            "transfer" => Some(EventKind::Transfer),
            "queue" => Some(EventKind::Queue),
            "codec" => Some(EventKind::Codec),
            "model_upload" => Some(EventKind::ModelUpload),
            "fault" => Some(EventKind::Fault),
            "retry" => Some(EventKind::Retry),
            "backoff" => Some(EventKind::Backoff),
            "fallback" => Some(EventKind::Fallback),
            "verify" => Some(EventKind::Verify),
            "server_select" => Some(EventKind::ServerSelect),
            "handoff" => Some(EventKind::Handoff),
            "predict" => Some(EventKind::Predict),
            "proactive_local" => Some(EventKind::ProactiveLocal),
            "enqueue" => Some(EventKind::Enqueue),
            "dequeue" => Some(EventKind::Dequeue),
            "queue_wait" => Some(EventKind::QueueWait),
            "meter_tick" => Some(EventKind::MeterTick),
            "meter_exhausted" => Some(EventKind::MeterExhausted),
            "effect_verdict" => Some(EventKind::EffectVerdict),
            "balance_decision" => Some(EventKind::BalanceDecision),
            "admit_deferred" => Some(EventKind::AdmitDeferred),
            "batch_formed" => Some(EventKind::BatchFormed),
            "other" => Some(EventKind::Other),
            _ => None,
        }
    }
}

/// One recorded event: a named interval of virtual time on a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event name (phase names like `"exec_server"`, layer names, link
    /// labels).
    pub name: String,
    /// Where it happened.
    pub lane: Lane,
    /// What kind of work it was.
    pub kind: EventKind,
    /// Virtual start time.
    pub start: Duration,
    /// Virtual end time (`>= start`).
    pub end: Duration,
    /// Payload bytes involved (transfers, captures, codecs), if any.
    pub bytes: Option<u64>,
    /// Span nesting depth at record time: 0 for top-level phases, 1+ for
    /// refinements (per-layer timings inside an exec span, link-level
    /// events inside a transfer phase).
    pub depth: u32,
}

impl Event {
    /// `end - start`.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for lane in [Lane::Client, Lane::Network, Lane::Server] {
            assert_eq!(Lane::parse(lane.as_str()), Some(lane));
        }
        for kind in [
            EventKind::Exec,
            EventKind::Layer,
            EventKind::Capture,
            EventKind::Restore,
            EventKind::Transfer,
            EventKind::Queue,
            EventKind::Codec,
            EventKind::ModelUpload,
            EventKind::Fault,
            EventKind::Retry,
            EventKind::Backoff,
            EventKind::Fallback,
            EventKind::Verify,
            EventKind::ServerSelect,
            EventKind::Handoff,
            EventKind::Predict,
            EventKind::ProactiveLocal,
            EventKind::Enqueue,
            EventKind::Dequeue,
            EventKind::QueueWait,
            EventKind::MeterTick,
            EventKind::MeterExhausted,
            EventKind::EffectVerdict,
            EventKind::BalanceDecision,
            EventKind::AdmitDeferred,
            EventKind::BatchFormed,
            EventKind::Other,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(Lane::parse("moon"), None);
        assert_eq!(EventKind::parse("nap"), None);
    }

    #[test]
    fn duration_is_end_minus_start() {
        let e = Event {
            name: "x".into(),
            lane: Lane::Client,
            kind: EventKind::Exec,
            start: Duration::from_millis(3),
            end: Duration::from_millis(10),
            bytes: None,
            depth: 0,
        };
        assert_eq!(e.duration(), Duration::from_millis(7));
    }
}
