//! Phase timelines: turning a [`ScenarioReport`] into spans and rendering
//! them as an ASCII Gantt chart — a quick visual of where an inference's
//! time went (the at-a-glance version of the paper's Fig. 7).

use crate::scenario::ScenarioReport;
use snapedge_trace::Trace;
use std::time::Duration;

/// Which machine a phase ran on (or the wire between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// The client board.
    Client,
    /// The network.
    Network,
    /// The edge server.
    Server,
}

/// One phase of an inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Phase name.
    pub name: &'static str,
    /// Where it ran.
    pub lane: Lane,
    /// Start, relative to the inference click.
    pub start: Duration,
    /// End, relative to the inference click.
    pub end: Duration,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// Display name, lane and canonical trace-event names of each phase. The
/// codec events are folded into the neighbouring capture/restore phases,
/// matching [`crate::Breakdown`]'s accounting.
const PHASES: [(&str, Lane, &[&str]); 8] = [
    ("exec (client)", Lane::Client, &["exec_client"]),
    (
        "capture (client)",
        Lane::Client,
        &["capture_client", "compress_up"],
    ),
    ("transfer up", Lane::Network, &["transfer_up"]),
    (
        "restore (server)",
        Lane::Server,
        &["decompress_up", "restore_server"],
    ),
    ("exec (server)", Lane::Server, &["exec_server"]),
    (
        "capture (server)",
        Lane::Server,
        &["capture_server", "compress_down"],
    ),
    ("transfer down", Lane::Network, &["transfer_down"]),
    (
        "restore (client)",
        Lane::Client,
        &["decompress_down", "restore_client"],
    ),
];

/// The phase spans of an offloaded inference, derived from the report's
/// event trace and rebased so the inference click is time zero.
/// Local/server-only runs produce a single execution span.
pub fn spans(report: &ScenarioReport) -> Vec<Span> {
    spans_of_trace(&report.trace, report.clicked_at)
}

/// Extracts the canonical phase spans from any scenario trace, shifting
/// timestamps so `origin` (usually the click time) becomes zero. Events
/// from before `origin` — model pre-sending, the ACK — are not phases and
/// are skipped.
pub fn spans_of_trace(trace: &Trace, origin: Duration) -> Vec<Span> {
    let mut out = Vec::new();
    for (name, lane, event_names) in PHASES {
        let mut start: Option<Duration> = None;
        let mut end = Duration::ZERO;
        for event in trace.events() {
            if event_names.contains(&event.name.as_str()) {
                start = Some(start.map_or(event.start, |s| s.min(event.start)));
                end = end.max(event.end);
            }
        }
        if let Some(s) = start {
            if end > s {
                out.push(Span {
                    name,
                    lane,
                    start: s.saturating_sub(origin),
                    end: end.saturating_sub(origin),
                });
            }
        }
    }
    out.sort_by_key(|s| (s.start, s.end));
    out
}

/// Renders spans as a fixed-width ASCII Gantt chart. `width` is the number
/// of character cells representing the full duration (minimum 10).
pub fn render_ascii(spans: &[Span], width: usize) -> String {
    let width = width.max(10);
    let total = spans.iter().map(|s| s.end).max().unwrap_or(Duration::ZERO);
    if total.is_zero() {
        return String::from("(empty timeline)\n");
    }
    let scale = |t: Duration| -> usize {
        ((t.as_secs_f64() / total.as_secs_f64()) * width as f64).round() as usize
    };
    let mut out = String::new();
    for span in spans {
        let lane = match span.lane {
            Lane::Client => "C",
            Lane::Network => "N",
            Lane::Server => "S",
        };
        let begin = scale(span.start).min(width);
        let end = scale(span.end).clamp(begin + 1, width.max(begin + 1));
        let mut bar = String::with_capacity(width + 2);
        for _ in 0..begin {
            bar.push(' ');
        }
        for _ in begin..end {
            bar.push('#');
        }
        out.push_str(&format!(
            "{lane} {name:<18} |{bar:<width$}| {secs:>8.3}s\n",
            name = span.name,
            secs = span.duration().as_secs_f64(),
        ));
    }
    out.push_str(&format!("  {:<18} total {:.3}s\n", "", total.as_secs_f64()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_scenario, ScenarioConfig, Strategy};

    #[test]
    fn spans_cover_the_whole_inference() {
        let report = run_scenario(&ScenarioConfig::tiny(Strategy::OffloadAfterAck)).unwrap();
        let spans = spans(&report);
        assert!(!spans.is_empty());
        // Contiguous, ordered, and ending at the total.
        for pair in spans.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        let last = spans.last().unwrap();
        assert!(last.end.abs_diff(report.total) < Duration::from_millis(1));
    }

    #[test]
    fn local_runs_have_one_span() {
        let report = run_scenario(&ScenarioConfig::tiny(Strategy::ClientOnly)).unwrap();
        let spans = spans(&report);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lane, Lane::Client);
    }

    #[test]
    fn render_contains_every_phase_and_respects_width() {
        let report = run_scenario(&ScenarioConfig::tiny(Strategy::OffloadAfterAck)).unwrap();
        let chart = render_ascii(&spans(&report), 40);
        assert!(chart.contains("exec (server)"));
        assert!(chart.contains("transfer up"));
        assert!(chart.contains("total"));
        for line in chart.lines() {
            assert!(line.len() < 100, "line too long: {line}");
        }
    }

    #[test]
    fn empty_timeline_renders_gracefully() {
        assert_eq!(render_ascii(&[], 40), "(empty timeline)\n");
    }
}
