//! Virtual time.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

/// A shared virtual clock. Cloning yields a handle to the *same* clock, so
/// every component of a simulation observes one timeline.
///
/// Time never flows by itself: it advances only via
/// [`SimClock::advance_to`] / [`SimClock::advance_by`], which keeps every
/// run bit-for-bit reproducible regardless of host load — the property
/// that lets the benchmark harness regenerate the paper's figures
/// deterministically.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Rc<Cell<Duration>>,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.now.get()
    }

    /// Moves time forward to `t`. Moving backwards is ignored (clocks are
    /// monotonic) — callers merging parallel timelines take the max.
    pub fn advance_to(&self, t: Duration) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }

    /// Moves time forward by `d`.
    pub fn advance_by(&self, d: Duration) {
        self.now.set(self.now.get() + d);
    }

    /// Rewinds time to `t` when `t` is earlier than now; later values are
    /// ignored (use [`SimClock::advance_to`] to move forward).
    ///
    /// This is *not* general time travel: the only legitimate caller is
    /// the metering layer, which kills a job at its virtual-time slice.
    /// Work the interpreter charged past the kill point never happened on
    /// the shared timeline, and rewinding to the kill instant reconstructs
    /// the true one — nothing else runs concurrently within one session.
    pub fn rewind_to(&self, t: Duration) {
        if t < self.now.get() {
            self.now.set(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance_by(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
        c.advance_to(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(1));
    }

    #[test]
    fn never_goes_backwards() {
        let c = SimClock::new();
        c.advance_to(Duration::from_secs(10));
        c.advance_to(Duration::from_secs(3));
        assert_eq!(c.now(), Duration::from_secs(10));
    }

    #[test]
    fn rewind_goes_backwards_only() {
        let c = SimClock::new();
        c.advance_to(Duration::from_secs(10));
        c.rewind_to(Duration::from_secs(4));
        assert_eq!(c.now(), Duration::from_secs(4));
        c.rewind_to(Duration::from_secs(7)); // forward rewinds are ignored
        assert_eq!(c.now(), Duration::from_secs(4));
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_by(Duration::from_secs(2));
        assert_eq!(b.now(), Duration::from_secs(2));
    }
}
