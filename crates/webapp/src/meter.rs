//! Per-tenant runtime metering: the dynamic half of snapshot sandboxing.
//!
//! The static verifier (`snapedge-analyze`) proves a snapshot
//! *self-contained* before it ships, but it cannot bound what the code
//! *does* at runtime — unbounded loops, heap blow-up, deep recursion.
//! A [`Meter`] closes that gap the way rhai's safety layer does for
//! embedded scripting: the interpreter charges every statement/expression
//! step, host-API call and snapshot-capture cell against a [`MeterLimits`]
//! budget, and the first cap to trip raises a typed
//! [`WebError::ResourceExhausted`] that the offload layer classifies as
//! fatal **for that server only** (kill the tenant there, fail over or run
//! locally — never retry).
//!
//! The meter is *environment*, not app state: snapshots never serialize
//! it, and each server installs its own limits over migrated state. With
//! no meter installed (the default) the interpreter behaves bit-for-bit
//! as before.

use crate::WebError;
use std::time::Duration;

/// Resource caps for one tenant's execution on one browser.
///
/// Every cap is optional; `None` means unmetered for that axis. An
/// all-`None` value (the [`Default`]) still counts usage — installing it
/// turns on observability (`ops_used` / `peak_heap` reporting and
/// `meter_tick` trace events) without ever exhausting.
///
/// The textual form used by the CLI and by `ServerSpec` fleet plans is
/// `ops=N,heap=N,str=N,depth=N,slice=MS` (any subset, `,` or `+`
/// separated); see [`MeterLimits::parse`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeterLimits {
    /// Interpreter op budget per tenant (statements/expressions evaluated,
    /// host-API calls, snapshot cells serialized).
    pub max_ops: Option<u64>,
    /// Heap size cap, in live heap *cells* (objects, arrays,
    /// `Float32Array`s — the unit the snapshot serializer counts).
    pub max_heap_cells: Option<usize>,
    /// Longest string (bytes) the tenant may build via concatenation.
    pub max_string_len: Option<usize>,
    /// Deepest MiniJS call stack the tenant may reach at runtime
    /// (distinct from the parser's fixed nesting limit).
    pub max_call_depth: Option<usize>,
    /// Virtual-time slice per compute grant: a server kills the job once
    /// its execution phase has consumed this much virtual time.
    pub time_slice: Option<Duration>,
}

impl MeterLimits {
    /// `true` when no cap is set (pure observability mode).
    pub fn is_unlimited(&self) -> bool {
        *self == MeterLimits::default()
    }

    /// Sets the op budget.
    pub fn with_ops(mut self, max_ops: u64) -> Self {
        self.max_ops = Some(max_ops);
        self
    }

    /// Sets the heap-cell cap.
    pub fn with_heap_cells(mut self, max_cells: usize) -> Self {
        self.max_heap_cells = Some(max_cells);
        self
    }

    /// Sets the string-length cap (bytes).
    pub fn with_string_len(mut self, max_len: usize) -> Self {
        self.max_string_len = Some(max_len);
        self
    }

    /// Sets the call-depth cap.
    pub fn with_call_depth(mut self, max_depth: usize) -> Self {
        self.max_call_depth = Some(max_depth);
        self
    }

    /// Sets the virtual-time slice.
    pub fn with_time_slice(mut self, slice: Duration) -> Self {
        self.time_slice = Some(slice);
        self
    }

    /// Parses `ops=N,heap=N,str=N,depth=N,slice=MS` (any subset; `slice`
    /// is fractional milliseconds). `+` is accepted as a separator too, so
    /// specs can nest inside `,`-delimited server plans. An empty spec is
    /// the all-`None` observability-only meter.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field (unknown key,
    /// non-numeric or non-positive value).
    pub fn parse(spec: &str) -> Result<MeterLimits, String> {
        let mut limits = MeterLimits::default();
        for part in spec.split([',', '+']) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("meter field {part:?} is not key=value"))?;
            match key {
                "ops" => limits.max_ops = Some(parse_count(value, "ops")?),
                "heap" => limits.max_heap_cells = Some(parse_count(value, "heap")? as usize),
                "str" => limits.max_string_len = Some(parse_count(value, "str")? as usize),
                "depth" => limits.max_call_depth = Some(parse_count(value, "depth")? as usize),
                "slice" => {
                    let ms: f64 = value
                        .parse()
                        .map_err(|_| format!("invalid meter slice {value:?}"))?;
                    if !ms.is_finite() || ms <= 0.0 {
                        return Err(format!("meter slice must be positive, got {value:?}"));
                    }
                    limits.time_slice = Some(Duration::from_secs_f64(ms / 1000.0));
                }
                other => {
                    return Err(format!(
                        "unknown meter field {other:?} (expected ops/heap/str/depth/slice)"
                    ))
                }
            }
        }
        Ok(limits)
    }

    /// Renders the spec back in [`MeterLimits::parse`] form
    /// (`parse(format(x)) == x` exactly).
    pub fn format(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.max_ops {
            parts.push(format!("ops={n}"));
        }
        if let Some(n) = self.max_heap_cells {
            parts.push(format!("heap={n}"));
        }
        if let Some(n) = self.max_string_len {
            parts.push(format!("str={n}"));
        }
        if let Some(n) = self.max_call_depth {
            parts.push(format!("depth={n}"));
        }
        if let Some(d) = self.time_slice {
            parts.push(format!("slice={}", d.as_secs_f64() * 1000.0));
        }
        parts.join(",")
    }
}

/// Runtime metering state for one browser: a [`MeterLimits`] budget plus
/// the usage counters charged against it.
///
/// Installed via `Browser::set_meter`; the interpreter charges it from
/// `bump_steps`, host-API dispatch and snapshot capture. `ops` counts the
/// current *segment* (one script load / event-loop drain — reset wherever
/// the step counter resets) while `total_ops` and `peak_heap` are
/// monotone over the browser's lifetime, which is what per-round
/// reporting reads.
#[derive(Debug, Clone, PartialEq)]
pub struct Meter {
    limits: MeterLimits,
    ops: u64,
    total_ops: u64,
    peak_heap: usize,
    depth: usize,
}

impl Meter {
    /// A fresh meter with zeroed counters.
    pub fn new(limits: MeterLimits) -> Meter {
        Meter {
            limits,
            ops: 0,
            total_ops: 0,
            peak_heap: 0,
            depth: 0,
        }
    }

    /// The configured caps.
    pub fn limits(&self) -> &MeterLimits {
        &self.limits
    }

    /// Ops charged in the current segment (since the last script load /
    /// event-loop drain started).
    pub fn run_ops(&self) -> u64 {
        self.ops
    }

    /// Ops charged over the browser's lifetime.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Largest heap (in cells) observed at any charge point.
    pub fn peak_heap(&self) -> usize {
        self.peak_heap
    }

    /// Starts a new charging segment (mirrors the interpreter's step-count
    /// reset). Also clears the call depth so a previous segment's abort
    /// cannot leak frames into this one.
    pub(crate) fn begin_segment(&mut self) {
        self.ops = 0;
        self.depth = 0;
    }

    /// Charges `ops` interpreter operations and observes the current heap
    /// size, failing on the op budget or the heap-cell cap.
    pub(crate) fn charge(&mut self, ops: u64, heap_cells: usize) -> Result<(), WebError> {
        self.ops += ops;
        self.total_ops += ops;
        if heap_cells > self.peak_heap {
            self.peak_heap = heap_cells;
        }
        if let Some(cap) = self.limits.max_ops {
            if self.ops > cap {
                return Err(exhausted("ops", cap, self.ops));
            }
        }
        if let Some(cap) = self.limits.max_heap_cells {
            if heap_cells > cap {
                return Err(exhausted("heap", cap as u64, heap_cells as u64));
            }
        }
        Ok(())
    }

    /// Enters a MiniJS function call, failing past the call-depth cap.
    pub(crate) fn enter_call(&mut self) -> Result<(), WebError> {
        self.depth += 1;
        if let Some(cap) = self.limits.max_call_depth {
            if self.depth > cap {
                return Err(exhausted("depth", cap as u64, self.depth as u64));
            }
        }
        Ok(())
    }

    /// Leaves a MiniJS function call (also runs on error paths, so depth
    /// stays balanced when a callee fails).
    pub(crate) fn exit_call(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Checks a freshly-built string against the length cap.
    pub(crate) fn check_string(&self, len: usize) -> Result<(), WebError> {
        if let Some(cap) = self.limits.max_string_len {
            if len > cap {
                return Err(exhausted("string", cap as u64, len as u64));
            }
        }
        Ok(())
    }
}

fn parse_count(value: &str, key: &str) -> Result<u64, String> {
    let n: u64 = value
        .parse()
        .map_err(|_| format!("invalid meter {key} {value:?}"))?;
    if n == 0 {
        return Err(format!("meter {key} must be positive"));
    }
    Ok(n)
}

fn exhausted(resource: &str, limit: u64, used: u64) -> WebError {
    WebError::ResourceExhausted {
        resource: resource.to_string(),
        limit,
        used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_format_roundtrip() {
        for spec in [
            "",
            "ops=1000",
            "ops=5,heap=10,str=64,depth=8,slice=2.5",
            "slice=0.1",
            "heap=3+depth=2", // `+` separator for nesting inside server plans
        ] {
            let limits = MeterLimits::parse(spec).unwrap();
            let reparsed = MeterLimits::parse(&limits.format()).unwrap();
            assert_eq!(limits, reparsed, "{spec}");
        }
        assert_eq!(
            MeterLimits::parse("ops=5,slice=2.5").unwrap().format(),
            "ops=5,slice=2.5"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "ops",
            "ops=",
            "ops=x",
            "ops=0",
            "ops=-3",
            "heap=0",
            "slice=0",
            "slice=-1",
            "slice=nope",
            "watts=9",
        ] {
            assert!(MeterLimits::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn empty_spec_is_observability_only() {
        let limits = MeterLimits::parse("").unwrap();
        assert!(limits.is_unlimited());
        let mut meter = Meter::new(limits);
        for _ in 0..10_000 {
            meter.charge(1, 999).unwrap();
        }
        assert_eq!(meter.total_ops(), 10_000);
        assert_eq!(meter.peak_heap(), 999);
    }

    #[test]
    fn op_budget_is_per_segment() {
        let mut meter = Meter::new(MeterLimits::default().with_ops(3));
        meter.charge(3, 0).unwrap();
        assert!(meter.charge(1, 0).is_err());
        meter.begin_segment();
        meter.charge(3, 0).unwrap(); // fresh budget
        assert_eq!(meter.total_ops(), 7);
    }

    #[test]
    fn heap_cap_trips_on_observation() {
        let mut meter = Meter::new(MeterLimits::default().with_heap_cells(5));
        meter.charge(1, 5).unwrap();
        let err = meter.charge(1, 6).unwrap_err();
        assert!(
            matches!(err, WebError::ResourceExhausted { ref resource, limit: 5, used: 6 }
                if resource == "heap"),
            "{err:?}"
        );
    }

    #[test]
    fn call_depth_balances_across_errors() {
        let mut meter = Meter::new(MeterLimits::default().with_call_depth(2));
        meter.enter_call().unwrap();
        meter.enter_call().unwrap();
        assert!(meter.enter_call().is_err());
        meter.exit_call();
        meter.exit_call();
        meter.exit_call();
        meter.enter_call().unwrap(); // depth recovered
    }

    #[test]
    fn string_cap_checks_length() {
        let meter = Meter::new(MeterLimits::default().with_string_len(4));
        meter.check_string(4).unwrap();
        assert!(meter.check_string(5).is_err());
    }
}
