//! Extension experiment: how a generic edge server degrades as more
//! clients offload to it — per-inference latency, queueing delay and
//! server duty cycle versus population.
//!
//! ```sh
//! cargo run --release -p snapedge-bench --bin contention
//! ```

use snapedge_bench::print_table;
use snapedge_core::{simulate_contention, ContentionConfig};

fn main() -> Result<(), snapedge_core::OffloadError> {
    println!("Multi-client contention at one edge server (full offloading)\n");

    for model in ["googlenet", "agenet"] {
        println!("== {model}");
        let mut rows = Vec::new();
        for clients in [1usize, 2, 4, 8, 16] {
            let report = simulate_contention(&ContentionConfig::paper(model, clients))?;
            rows.push(vec![
                clients.to_string(),
                format!("{:.2}", report.mean_latency.as_secs_f64()),
                format!("{:.2}", report.max_latency.as_secs_f64()),
                format!("{:.2}", report.mean_queue_wait.as_secs_f64()),
                format!("{:.0}%", report.server_utilization * 100.0),
            ]);
        }
        print_table(
            &[
                "clients",
                "mean lat (s)",
                "max lat (s)",
                "queue wait (s)",
                "server util",
            ],
            &rows,
            &[8, 12, 12, 14, 12],
        );
        println!();
    }

    println!("Reading: one x86 edge server absorbs a few clients gracefully, but");
    println!("GoogLeNet-class service times (~2.7 s) saturate it quickly — the");
    println!("queueing delay, not the network, becomes the offloading bottleneck,");
    println!("motivating the paper's vision of many small dispersed edge servers.");
    Ok(())
}
