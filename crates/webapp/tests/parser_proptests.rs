//! Property tests for the MiniJS front-end: printing any AST and parsing
//! it back must be the identity — the invariant the snapshot mechanism
//! rests on (app functions are re-emitted from their ASTs).

use proptest::prelude::*;
use snapedge_webapp::ast::{print_program, Expr, FunctionDef, Stmt};
use snapedge_webapp::parser::parse_program;

fn ident_strategy() -> impl Strategy<Value = String> {
    // Avoid keywords and reserved prefixes.
    "[a-h][a-z0-9]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "var"
                | "function"
                | "return"
                | "if"
                | "else"
                | "while"
                | "for"
                | "new"
                | "true"
                | "false"
                | "null"
                | "undefined"
                | "typeof"
        )
    })
}

fn literal_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Undefined),
        Just(Expr::Null),
        any::<bool>().prop_map(Expr::Bool),
        // Finite numbers; the printer handles negatives/specials via
        // wrapping, covered by unit tests.
        (-1.0e9f64..1.0e9).prop_map(Expr::Number),
        "[ -~]{0,12}".prop_map(Expr::Str),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal_strategy(), ident_strategy().prop_map(Expr::Ident)];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::Array),
            prop::collection::vec((ident_strategy(), inner.clone()), 0..3).prop_map(Expr::Object),
            (inner.clone(), ident_strategy()).prop_map(|(e, name)| Expr::Member(Box::new(e), name)),
            (inner.clone(), inner.clone()).prop_map(|(e, i)| Expr::Index(Box::new(e), Box::new(i))),
            (inner.clone(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| Expr::Call(Box::new(f), args)),
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("%"),
                    Just("=="),
                    Just("!="),
                    Just("<"),
                    Just("<="),
                    Just(">"),
                    Just(">="),
                    Just("&&"),
                    Just("||")
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::Binary(op, Box::new(l), Box::new(r))),
            (
                prop_oneof![Just("!"), Just("-"), Just("typeof")],
                inner.clone()
            )
                .prop_map(|(op, e)| match (op, e) {
                    // The parser folds unary minus over literals.
                    ("-", Expr::Number(n)) => Expr::Number(-n),
                    (op, e) => Expr::Unary(op, Box::new(e)),
                }),
            inner
                .clone()
                .prop_map(|e| Expr::NewFloat32Array(Box::new(e))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (ident_strategy(), prop::option::of(expr_strategy()))
            .prop_map(|(name, init)| Stmt::Var(name, init)),
        (ident_strategy(), expr_strategy())
            .prop_map(|(name, value)| Stmt::Assign(Expr::Ident(name), value)),
        expr_strategy().prop_map(Stmt::Expr),
    ];
    simple.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            inner.clone(),
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(cond, t, e)| Stmt::If(cond, t, e)),
            (expr_strategy(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(cond, body)| Stmt::While(cond, body)),
            (
                ident_strategy(),
                prop::collection::vec(ident_strategy(), 0..3),
                prop::collection::vec(inner, 0..3)
            )
                .prop_map(|(name, params, body)| Stmt::Function(FunctionDef {
                    name,
                    params,
                    body
                })),
        ]
    })
}

/// Normalizes `Stmt::Function` bodies containing `Return` at top level —
/// generated programs may place `return` outside functions, which parses
/// fine but is a runtime error; for the roundtrip property that's okay.
fn program_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    prop::collection::vec(stmt_strategy(), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_then_parse_is_identity(program in program_strategy()) {
        let printed = print_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{printed}"));
        prop_assert_eq!(reparsed, program, "printed:\n{}", printed);
    }

    #[test]
    fn printing_is_a_fixed_point(program in program_strategy()) {
        let once = print_program(&program);
        let reparsed = parse_program(&once).unwrap();
        let twice = print_program(&reparsed);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn numbers_roundtrip_exactly(n in any::<f64>().prop_filter("finite", |v| v.is_finite())) {
        let program = vec![Stmt::Var("x".to_string(), Some(Expr::Number(n)))];
        let printed = print_program(&program);
        let reparsed = parse_program(&printed).unwrap();
        let Stmt::Var(_, Some(Expr::Number(m))) = &reparsed[0] else {
            // Negative numbers print as (-N): unary minus around a literal.
            let Stmt::Var(_, Some(Expr::Unary("-", inner))) = &reparsed[0] else {
                panic!("unexpected shape: {reparsed:?}");
            };
            let Expr::Number(m) = **inner else { panic!() };
            prop_assert_eq!(-m, n);
            return Ok(());
        };
        prop_assert_eq!(*m, n);
    }

    #[test]
    fn strings_roundtrip_exactly(s in "[ -~\\n\\t]{0,40}") {
        let program = vec![Stmt::Var("x".to_string(), Some(Expr::Str(s.clone())))];
        let printed = print_program(&program);
        let reparsed = parse_program(&printed).unwrap();
        let Stmt::Var(_, Some(Expr::Str(t))) = &reparsed[0] else { panic!() };
        prop_assert_eq!(t, &s);
    }
}
