//! Interprocedural effect analysis over MiniJS: per-function and
//! per-round read/write sets, purity classification, host-API effect
//! tagging, and conservative static cost bounds.
//!
//! Every function (and the top level) is summarized into a point on the
//! effect lattice
//!
//! ```text
//! Pure  ⊑  Writes(set)  ⊑  Host(tag)  ⊑  Unknown
//! ```
//!
//! and three offload-layer consumers read the result:
//!
//! * **write-set-pruned capture** — the per-round write set (globals any
//!   event-handler-reachable code can write) becomes
//!   `snapedge_webapp::CaptureHints`, so delta capture deep-compares only
//!   statically-writable globals. Whenever a write cannot be attributed
//!   (`Unknown`: dynamic member writes through aliases, mutating method
//!   calls on unclassifiable receivers), [`EffectSummary::round_writes`]
//!   is `None` and capture falls back to the full walk, bit-identically.
//! * **pre-ship nondeterminism gating** — host accesses are tagged with
//!   the effect class the embedder declared at registration
//!   ([`HostEffect`]); reaching a clock/random/IO host makes the app
//!   unreplayable and [`EffectSummary::verdict`] returns the typed
//!   [`AnalyzeError::Nondeterministic`] before any link bytes ship. DOM
//!   effects stay replayable (snapshots carry the document).
//! * **static cost bounds** — [`CostBound`] holds a guaranteed *floor* on
//!   metered ops / heap growth per round and (when loop-free) a ceiling;
//!   the floor flags guaranteed `ResourceExhausted` against
//!   [`MeterLimits`] pre-ship and feeds the offload predictor as a
//!   compute-time prior.
//!
//! Soundness notes. The interpreter charges at least one metered op per
//! executed statement, so a statement-count floor (stopping at any
//! possible early `return`, taking the `min` across `if` branches, and
//! counting loop bodies zero times) is a true lower bound. Write
//! attribution is flow-insensitive and conservative: a member/index write
//! or mutating method call whose receiver is not rooted at a global
//! identifier, a recognizable DOM expression, or a DOM-holding local
//! poisons the whole summary to `Unknown`. Aliasing between two *globals*
//! needs no handling here — delta capture's changed/unchanged heap
//! intersection check already forces a full snapshot in that case.

use crate::hostapi;
use snapedge_webapp::ast::{Expr, FunctionDef, Stmt};
use snapedge_webapp::{html, parser, HostEffect, MeterLimits};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Context name used for top-level (load-time) code in summaries.
pub const TOPLEVEL: &str = "<toplevel>";

/// Typed outcome of an effect-analysis pass that cannot vouch for the
/// app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The source failed to lex/parse; nothing could be analyzed.
    Parse(String),
    /// The app reaches nondeterministic host APIs — replaying the same
    /// snapshot on another browser can diverge, so it must run where it
    /// is (or not at all).
    Nondeterministic(Vec<NondetSource>),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Parse(msg) => write!(f, "parse: {msg}"),
            AnalyzeError::Nondeterministic(sources) => {
                write!(f, "nondeterministic host access: ")?;
                for (i, s) in sources.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// One nondeterministic host access found by the pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NondetSource {
    /// Function containing the access ([`TOPLEVEL`] for load-time code).
    pub function: String,
    /// The registered host object name.
    pub host: String,
    /// Method or property accessed; `"*"` when the host object itself is
    /// aliased into a variable (every later use is assumed reachable).
    pub method: String,
    /// The effect class the embedder declared for the host.
    pub effect: HostEffect,
}

impl fmt::Display for NondetSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} ({}) in {}",
            self.host,
            self.method,
            self.effect.label(),
            self.function
        )
    }
}

/// A point on the effect lattice — the classification of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// No writes, no host access: safe to elide entirely.
    Pure,
    /// Writes only the named globals (and nothing else observable).
    Writes(BTreeSet<String>),
    /// Reaches host APIs; the tag is the *worst* effect class touched.
    Host(HostEffect),
    /// A write could not be attributed — assume anything may change.
    Unknown,
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Pure => write!(f, "pure"),
            Effect::Writes(set) => {
                write!(f, "writes(")?;
                for (i, name) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}")?;
                }
                write!(f, ")")
            }
            Effect::Host(tag) => write!(f, "host({})", tag.label()),
            Effect::Unknown => write!(f, "unknown"),
        }
    }
}

/// Conservative static cost bounds for one execution (a function body
/// including everything it is guaranteed to call, or one offloaded
/// round).
///
/// `min_*` are guaranteed floors: every execution charges at least that
/// many metered ops / allocates at least that many heap cells. `max_*`
/// are ceilings, `None` when unboundable (loops, recursion, event
/// re-dispatch).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostBound {
    /// Guaranteed minimum metered ops.
    pub min_ops: u64,
    /// Maximum metered ops, when statically bounded.
    pub max_ops: Option<u64>,
    /// Guaranteed minimum fresh heap cells allocated.
    pub min_new_cells: u64,
    /// Maximum fresh heap cells, when statically bounded.
    pub max_new_cells: Option<u64>,
}

impl CostBound {
    /// Flags guaranteed resource exhaustion: the cheapest possible
    /// execution already blows a [`MeterLimits`] cap, so shipping the
    /// snapshot would only burn link bytes before the inevitable
    /// `ResourceExhausted`. Returns a description of the first doomed
    /// axis, or `None` when execution might fit.
    pub fn guaranteed_exhaustion(&self, limits: &MeterLimits) -> Option<String> {
        if let Some(cap) = limits.max_ops {
            if self.min_ops > cap {
                return Some(format!(
                    "op floor {} exceeds the meter budget ops={cap}",
                    self.min_ops
                ));
            }
        }
        if let Some(cap) = limits.max_heap_cells {
            if self.min_new_cells > cap as u64 {
                return Some(format!(
                    "allocation floor {} cells exceeds the meter budget heap={cap}",
                    self.min_new_cells
                ));
            }
        }
        None
    }
}

impl fmt::Display for CostBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ceil = |v: &Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "∞".to_string(),
        };
        write!(
            f,
            "ops {}..{}, new cells {}..{}",
            self.min_ops,
            ceil(&self.max_ops),
            self.min_new_cells,
            ceil(&self.max_new_cells)
        )
    }
}

/// Effect facts for one function (or the top level).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnEffect {
    /// Globals read.
    pub reads: BTreeSet<String>,
    /// Globals written (directly or through heap regions rooted at them).
    pub writes: BTreeSet<String>,
    /// Named functions referenced (call graph edges).
    pub calls: BTreeSet<String>,
    /// Host objects touched (built-in or registered).
    pub hosts: BTreeSet<String>,
    /// Worst host effect class touched, when any.
    pub host_tag: Option<HostEffect>,
    /// A write escaped static attribution (dynamic receiver).
    pub unknown_writes: bool,
    /// This body (not counting callees) can enqueue events
    /// (`dispatchEvent`), making op ceilings unboundable.
    pub dispatches_events: bool,
    /// Cost bounds of this body alone; callee costs are folded in by
    /// [`EffectSummary`].
    pub cost: CostBound,
    /// Nondeterministic host accesses in this body.
    pub nondet: Vec<NondetSource>,
}

impl FnEffect {
    /// This function's point on the effect lattice.
    pub fn classify(&self) -> Effect {
        if self.unknown_writes {
            return Effect::Unknown;
        }
        if let Some(tag) = self.host_tag {
            if tag.is_nondeterministic() {
                return Effect::Host(tag);
            }
            if self.writes.is_empty() {
                return Effect::Host(tag);
            }
        }
        if !self.writes.is_empty() {
            return Effect::Writes(self.writes.clone());
        }
        match self.host_tag {
            Some(tag) => Effect::Host(tag),
            None => Effect::Pure,
        }
    }
}

/// Inputs to an effect-analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectOptions {
    /// Registered host objects and their embedder-declared effect
    /// classes, beyond the built-in deterministic
    /// `document`/`console`/`Math` surface. Embedder-facing API, keyed
    /// by registration name. lint: allow(string-keyed-map)
    pub hosts: BTreeMap<String, HostEffect>,
}

impl EffectOptions {
    /// Options with no registered hosts (built-ins only).
    pub fn new() -> EffectOptions {
        EffectOptions::default()
    }

    /// Builds options from `Browser::host_effects()` output.
    pub fn from_host_effects(list: Vec<(String, HostEffect)>) -> EffectOptions {
        EffectOptions {
            hosts: list.into_iter().collect(),
        }
    }

    /// Adds one registered host with its declared effect class.
    pub fn with_host(mut self, name: &str, effect: HostEffect) -> EffectOptions {
        self.hosts.insert(name.to_string(), effect);
        self
    }
}

/// The memoizable result of one effect-analysis pass over an app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSummary {
    /// Per-function effects, plus [`TOPLEVEL`] for load-time code.
    /// Report-facing output, keyed by user-visible names.
    /// lint: allow(string-keyed-map)
    pub functions: BTreeMap<String, FnEffect>,
    /// Functions installed as event handlers (`addEventListener` roots).
    pub handlers: BTreeSet<String>,
    /// Union of globals any handler-reachable code can write — the
    /// per-round write set behind capture pruning. `None` when any
    /// reachable write escaped attribution (the mandatory full-walk
    /// fallback).
    pub round_writes: Option<BTreeSet<String>>,
    /// Nondeterministic host accesses anywhere in the app (top level
    /// included — load-time nondeterminism already breaks replay).
    pub nondet: Vec<NondetSource>,
    /// Per-round cost bounds over the handler-reachable closure.
    pub cost: CostBound,
}

impl EffectSummary {
    /// `true` when replaying this app's snapshots can diverge.
    pub fn is_nondeterministic(&self) -> bool {
        !self.nondet.is_empty()
    }

    /// The pre-ship gate: `Err(AnalyzeError::Nondeterministic)` when the
    /// app reaches clock/random/IO hosts, `Ok` otherwise.
    pub fn verdict(&self) -> Result<(), AnalyzeError> {
        if self.nondet.is_empty() {
            Ok(())
        } else {
            Err(AnalyzeError::Nondeterministic(self.nondet.clone()))
        }
    }

    /// The per-round write set, when every reachable write was
    /// attributed.
    pub fn writable_globals(&self) -> Option<&BTreeSet<String>> {
        self.round_writes.as_ref()
    }

    /// Renders a human-readable report: per-function lattice points, the
    /// round write set, and cost bounds.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fx) in &self.functions {
            let handler = if self.handlers.contains(name) {
                " [handler]"
            } else {
                ""
            };
            out.push_str(&format!(
                "{name}{handler}: {} ({})\n",
                fx.classify(),
                fx.cost
            ));
        }
        match &self.round_writes {
            Some(set) => {
                let names: Vec<&str> = set.iter().map(String::as_str).collect();
                out.push_str(&format!("round write set: {{{}}}\n", names.join(", ")));
            }
            None => out.push_str("round write set: unknown (full-walk capture)\n"),
        }
        out.push_str(&format!("round cost bound: {}\n", self.cost));
        if !self.nondet.is_empty() {
            for s in &self.nondet {
                out.push_str(&format!("nondeterministic: {s}\n"));
            }
        }
        out
    }
}

/// Analyzes one MiniJS script.
///
/// # Errors
///
/// Returns [`AnalyzeError::Parse`] when the source does not parse. A
/// nondeterministic app still returns `Ok` (so callers can inspect the
/// full summary); use [`EffectSummary::verdict`] to gate.
pub fn effect_summary(src: &str, opts: &EffectOptions) -> Result<EffectSummary, AnalyzeError> {
    let program = parser::parse_program(src).map_err(|e| AnalyzeError::Parse(e.to_string()))?;
    Ok(EffectPass::run(&program, opts))
}

/// Analyzes every `<script>` in an HTML document as one program (scripts
/// share one global scope and run in order).
///
/// # Errors
///
/// Returns [`AnalyzeError::Parse`] for HTML or script parse failures.
pub fn effect_summary_html(
    html_src: &str,
    opts: &EffectOptions,
) -> Result<EffectSummary, AnalyzeError> {
    let doc = html::parse_document(html_src).map_err(|e| AnalyzeError::Parse(e.to_string()))?;
    let combined = doc.scripts.join("\n");
    effect_summary(&combined, opts)
}

/// Memoizes per-app effect summaries keyed by source + host surface, so
/// long-lived sessions analyze each app once (FNV-1a, no external
/// dependencies).
#[derive(Debug, Default)]
pub struct EffectCache {
    map: BTreeMap<u64, Result<EffectSummary, AnalyzeError>>,
    hits: u64,
    misses: u64,
}

impl EffectCache {
    /// An empty cache.
    pub fn new() -> EffectCache {
        EffectCache::default()
    }

    /// Memoized [`effect_summary_html`].
    ///
    /// # Errors
    ///
    /// Returns the cached or fresh [`AnalyzeError::Parse`].
    pub fn summary_html(
        &mut self,
        html_src: &str,
        opts: &EffectOptions,
    ) -> Result<EffectSummary, AnalyzeError> {
        let key = cache_key(html_src, opts);
        if let Some(hit) = self.map.get(&key) {
            self.hits += 1;
            return hit.clone();
        }
        self.misses += 1;
        let result = effect_summary_html(html_src, opts);
        self.map.insert(key, result.clone());
        result
    }

    /// Distinct (source, host surface) keys analyzed so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

fn cache_key(src: &str, opts: &EffectOptions) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    feed(src.as_bytes());
    for (name, effect) in &opts.hosts {
        feed(b"\0");
        feed(name.as_bytes());
        feed(b"=");
        feed(effect.label().as_bytes());
    }
    h
}

// ---------------------------------------------------------------------------
// The pass itself.
// ---------------------------------------------------------------------------

/// One function's own scope: parameters plus hoisted `var` locals
/// (mirrors the interpreter's closure-free lookup).
#[derive(Debug, Default)]
struct FuncScope {
    params: BTreeSet<String>,
    locals: BTreeSet<String>,
    /// Locals every initializer/assignment of which is a recognizable DOM
    /// expression — member writes through them are replayable DOM edits,
    /// not heap mutations.
    dom_locals: BTreeSet<String>,
}

impl FuncScope {
    fn contains(&self, name: &str) -> bool {
        self.params.contains(name) || self.locals.contains(name)
    }
}

struct EffectPass<'a> {
    opts: &'a EffectOptions,
    // Built once per verification run. lint: allow(string-keyed-map)
    functions: BTreeMap<String, FuncScope>,
    globals: BTreeSet<String>,
    builtin_hosts: BTreeSet<String>,
}

/// Methods on plain heap values that mutate their receiver (must stay in
/// sync with the interpreter's method tables; everything else —
/// `indexOf`, `slice`, `split`, ... — allocates at most).
const MUTATING_METHODS: &[&str] = &["push", "pop"];

impl<'a> EffectPass<'a> {
    fn run(program: &[Stmt], opts: &'a EffectOptions) -> EffectSummary {
        let mut pass = EffectPass {
            opts,
            functions: BTreeMap::new(),
            globals: BTreeSet::new(),
            builtin_hosts: hostapi::HOST_GLOBALS
                .iter()
                .map(|s| s.to_string())
                .collect(),
        };
        // Pass 1: declarations — function scopes, top-level `var`s, and
        // runtime-created globals (non-local assignment targets).
        pass.collect_declarations(program);
        pass.collect_global_assign_targets(program, None);

        // Pass 2: per-function (and top-level) effect facts.
        // lint: allow(string-keyed-map)
        let mut functions: BTreeMap<String, FnEffect> = BTreeMap::new();
        let mut handlers: BTreeSet<String> = BTreeSet::new();
        let mut toplevel = FnEffect::default();
        pass.scan_block(program, None, &mut toplevel, &mut handlers);
        let cost = body_cost(program, &mut |s| pass.stmt_flags(s, None)).bound;
        toplevel.cost = cost;
        functions.insert(TOPLEVEL.to_string(), toplevel);
        let defs = collect_function_defs(program);
        for def in &defs {
            let mut fx = FnEffect::default();
            let ctx = Some(def.name.as_str());
            pass.scan_block(&def.body, ctx, &mut fx, &mut handlers);
            fx.cost = body_cost(&def.body, &mut |s| pass.stmt_flags(s, ctx)).bound;
            functions.insert(def.name.to_string(), fx);
        }

        // Pass 3: fold costs and effects over the call graph, then take
        // the per-round view from the handler roots.
        let summary_cost =
            |roots: &BTreeSet<String>| -> CostBound { round_cost(&functions, roots) };
        let reachable = reachable_from(&functions, handlers.iter().cloned().collect());
        let mut round_writes: Option<BTreeSet<String>> = Some(BTreeSet::new());
        for name in &reachable {
            let Some(fx) = functions.get(name) else {
                continue;
            };
            if fx.unknown_writes {
                round_writes = None;
                break;
            }
            if let Some(set) = round_writes.as_mut() {
                set.extend(fx.writes.iter().cloned());
            }
        }
        // Nondeterminism anywhere (top level included): load-time clock
        // reads already make two restores disagree.
        let mut nondet: Vec<NondetSource> = Vec::new();
        for fx in functions.values() {
            nondet.extend(fx.nondet.iter().cloned());
        }
        nondet.sort();
        nondet.dedup();

        let cost = summary_cost(&handlers);
        EffectSummary {
            functions,
            handlers,
            round_writes,
            nondet,
            cost,
        }
    }

    // ---- Pass 1: declarations (mirrors the verifier's scoping). ----

    fn collect_declarations(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Var(name, _) => {
                    self.globals.insert(name.to_string());
                }
                Stmt::Function(def) => self.collect_function(def),
                Stmt::If(_, then, els) => {
                    self.collect_declarations(then);
                    self.collect_declarations(els);
                }
                Stmt::While(_, body) => self.collect_declarations(body),
                Stmt::For {
                    init, update, body, ..
                } => {
                    if let Some(s) = init {
                        self.collect_declarations(std::slice::from_ref(s));
                    }
                    if let Some(s) = update {
                        self.collect_declarations(std::slice::from_ref(s));
                    }
                    self.collect_declarations(body);
                }
                Stmt::Assign(..) | Stmt::Expr(_) | Stmt::Return(_) => {}
            }
        }
    }

    fn collect_function(&mut self, def: &FunctionDef) {
        let mut scope = FuncScope::default();
        scope
            .params
            .extend(def.params.iter().map(|p| p.to_string()));
        collect_vars_shallow(&def.body, &mut scope.locals);
        scope.dom_locals = dom_locals(def, &scope);
        self.functions.insert(def.name.to_string(), scope);
        for nested in collect_function_defs(&def.body) {
            self.collect_function(&nested);
        }
    }

    fn collect_global_assign_targets(&mut self, stmts: &[Stmt], ctx: Option<&str>) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign(Expr::Ident(name), _)
                    if !self.is_local(name, ctx) && !self.is_any_host(name) =>
                {
                    self.globals.insert(name.to_string());
                }
                Stmt::Function(def) => {
                    self.collect_global_assign_targets(&def.body, Some(&def.name));
                }
                Stmt::If(_, then, els) => {
                    self.collect_global_assign_targets(then, ctx);
                    self.collect_global_assign_targets(els, ctx);
                }
                Stmt::While(_, body) => self.collect_global_assign_targets(body, ctx),
                Stmt::For {
                    init, update, body, ..
                } => {
                    if let Some(s) = init {
                        self.collect_global_assign_targets(std::slice::from_ref(s), ctx);
                    }
                    if let Some(s) = update {
                        self.collect_global_assign_targets(std::slice::from_ref(s), ctx);
                    }
                    self.collect_global_assign_targets(body, ctx);
                }
                _ => {}
            }
        }
    }

    // ---- Name classification. ----

    fn is_local(&self, name: &str, ctx: Option<&str>) -> bool {
        match ctx {
            None => false,
            Some(f) => self
                .functions
                .get(f)
                .map(|s| s.contains(name))
                .unwrap_or(false),
        }
    }

    fn is_dom_local(&self, name: &str, ctx: Option<&str>) -> bool {
        match ctx {
            None => false,
            Some(f) => self
                .functions
                .get(f)
                .map(|s| s.dom_locals.contains(name))
                .unwrap_or(false),
        }
    }

    fn is_any_host(&self, name: &str) -> bool {
        self.builtin_hosts.contains(name) || self.opts.hosts.contains_key(name)
    }

    /// The effect class of an *unshadowed* host identifier, or `None`
    /// when the name is not a host here.
    fn host_effect_of(&self, name: &str, ctx: Option<&str>) -> Option<HostEffect> {
        if self.is_local(name, ctx)
            || self.globals.contains(name)
            || self.functions.contains_key(name)
        {
            return None; // shadowed: an app binding, not the host
        }
        if let Some(&e) = self.opts.hosts.get(name) {
            return Some(e);
        }
        match name {
            // The built-in surface is deterministic by construction (no
            // Date / Math.random / timers); `document` edits the DOM.
            "document" => Some(HostEffect::Dom),
            "console" | "Math" => Some(HostEffect::Deterministic),
            _ => None,
        }
    }

    /// `true` when the expression definitely evaluates to a DOM element
    /// (including through a tracked DOM-holding local).
    fn is_dom_expr(&self, expr: &Expr, ctx: Option<&str>) -> bool {
        let document_unshadowed =
            |name: &str| name == "document" && self.host_effect_of(name, ctx).is_some();
        match expr {
            Expr::Ident(name) => self.is_dom_local(name, ctx),
            Expr::Call(callee, _) => match callee.as_ref() {
                Expr::Member(obj, m) => {
                    matches!(obj.as_ref(), Expr::Ident(n) if document_unshadowed(n))
                        && (m == "getElementById" || m == "createElement")
                }
                _ => false,
            },
            Expr::Member(obj, p) => {
                matches!(obj.as_ref(), Expr::Ident(n) if document_unshadowed(n)) && p == "body"
            }
            _ => false,
        }
    }

    /// Walks a member/index chain to its base expression.
    fn chain_base<'e>(&self, mut expr: &'e Expr) -> &'e Expr {
        loop {
            match expr {
                Expr::Member(obj, _) | Expr::Index(obj, _) => expr = obj,
                other => return other,
            }
        }
    }

    // ---- Pass 2: effect facts. ----

    fn scan_block(
        &self,
        stmts: &[Stmt],
        ctx: Option<&str>,
        fx: &mut FnEffect,
        handlers: &mut BTreeSet<String>,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::Var(_, init) => {
                    if let Some(e) = init {
                        self.scan_expr(e, ctx, fx, handlers);
                    }
                }
                Stmt::Assign(target, value) => {
                    self.scan_write(target, ctx, fx);
                    match target {
                        Expr::Ident(_) => {}
                        Expr::Member(obj, _) => self.scan_expr(obj, ctx, fx, handlers),
                        Expr::Index(obj, idx) => {
                            self.scan_expr(obj, ctx, fx, handlers);
                            self.scan_expr(idx, ctx, fx, handlers);
                        }
                        other => self.scan_expr(other, ctx, fx, handlers),
                    }
                    self.scan_expr(value, ctx, fx, handlers);
                }
                Stmt::Expr(e) => self.scan_expr(e, ctx, fx, handlers),
                Stmt::Function(_) => {
                    // Nested declarations get their own FnEffect entry
                    // via collect_function_defs; declaring one here has
                    // no effect on this body's facts.
                }
                Stmt::Return(e) => {
                    if let Some(e) = e {
                        self.scan_expr(e, ctx, fx, handlers);
                    }
                }
                Stmt::If(cond, then, els) => {
                    self.scan_expr(cond, ctx, fx, handlers);
                    self.scan_block(then, ctx, fx, handlers);
                    self.scan_block(els, ctx, fx, handlers);
                }
                Stmt::While(cond, body) => {
                    self.scan_expr(cond, ctx, fx, handlers);
                    self.scan_block(body, ctx, fx, handlers);
                }
                Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                } => {
                    if let Some(s) = init {
                        self.scan_block(std::slice::from_ref(s), ctx, fx, handlers);
                    }
                    if let Some(e) = cond {
                        self.scan_expr(e, ctx, fx, handlers);
                    }
                    if let Some(s) = update {
                        self.scan_block(std::slice::from_ref(s), ctx, fx, handlers);
                    }
                    self.scan_block(body, ctx, fx, handlers);
                }
            }
        }
    }

    /// Attributes one assignment target.
    fn scan_write(&self, target: &Expr, ctx: Option<&str>, fx: &mut FnEffect) {
        match target {
            Expr::Ident(name) => {
                if !self.is_local(name, ctx) && !self.is_any_host(name) {
                    fx.writes.insert(name.to_string());
                }
            }
            Expr::Member(obj, _) | Expr::Index(obj, _) => {
                // DOM writes (textContent) are replayable; the delta DOM
                // diff is never pruned.
                if self.is_dom_expr(obj, ctx) {
                    self.touch_host(fx, "document", HostEffect::Dom, ctx);
                    return;
                }
                match self.chain_base(target) {
                    Expr::Ident(base)
                        if !self.is_local(base, ctx) && self.globals.contains(base.as_str()) =>
                    {
                        // Mutation of a heap region rooted at a global.
                        fx.writes.insert(base.to_string());
                    }
                    _ => {
                        // A write through a local alias or computed
                        // receiver: could hit any global's reachable
                        // region.
                        fx.unknown_writes = true;
                    }
                }
            }
            _ => fx.unknown_writes = true,
        }
    }

    fn touch_host(&self, fx: &mut FnEffect, host: &str, effect: HostEffect, _ctx: Option<&str>) {
        fx.hosts.insert(host.to_string());
        fx.host_tag = Some(match fx.host_tag {
            Some(prev) => prev.max(effect),
            None => effect,
        });
    }

    fn record_nondet(
        &self,
        fx: &mut FnEffect,
        host: &str,
        method: &str,
        effect: HostEffect,
        ctx: Option<&str>,
    ) {
        fx.nondet.push(NondetSource {
            function: ctx.unwrap_or(TOPLEVEL).to_string(),
            host: host.to_string(),
            method: method.to_string(),
            effect,
        });
    }

    fn scan_expr(
        &self,
        expr: &Expr,
        ctx: Option<&str>,
        fx: &mut FnEffect,
        handlers: &mut BTreeSet<String>,
    ) {
        match expr {
            Expr::Ident(name) => self.scan_ident(name, ctx, fx),
            Expr::Array(elems) => {
                for e in elems {
                    self.scan_expr(e, ctx, fx, handlers);
                }
            }
            Expr::Object(props) => {
                for (_, e) in props {
                    self.scan_expr(e, ctx, fx, handlers);
                }
            }
            Expr::NewFloat32Array(e) | Expr::Unary(_, e) => self.scan_expr(e, ctx, fx, handlers),
            Expr::Member(obj, prop) => {
                self.scan_member(obj, prop, false, ctx, fx);
                self.scan_receiver(obj, ctx, fx, handlers);
            }
            Expr::Index(obj, idx) => {
                self.scan_expr(obj, ctx, fx, handlers);
                self.scan_expr(idx, ctx, fx, handlers);
            }
            Expr::Call(callee, args) => {
                if let Expr::Member(obj, method) = callee.as_ref() {
                    self.scan_member(obj, method, true, ctx, fx);
                    self.scan_method_mutation(obj, method, ctx, fx);
                    self.scan_receiver(obj, ctx, fx, handlers);
                    if method == "addEventListener" {
                        if let Some(Expr::Ident(handler)) = args.get(1) {
                            handlers.insert(handler.to_string());
                        } else if args.len() >= 2 {
                            // A dynamic handler expression defeats the
                            // reachability roots.
                            fx.unknown_writes = true;
                        }
                    }
                    if method == "dispatchEvent" {
                        fx.dispatches_events = true;
                    }
                } else {
                    self.scan_expr(callee, ctx, fx, handlers);
                }
                for a in args {
                    self.scan_expr(a, ctx, fx, handlers);
                }
            }
            Expr::Binary(_, l, r) => {
                self.scan_expr(l, ctx, fx, handlers);
                self.scan_expr(r, ctx, fx, handlers);
            }
            Expr::Undefined | Expr::Null | Expr::Bool(_) | Expr::Number(_) | Expr::Str(_) => {}
        }
    }

    /// Scans a member/call receiver without re-triggering the bare-host
    /// aliasing rule for the direct `host.method` form.
    fn scan_receiver(
        &self,
        obj: &Expr,
        ctx: Option<&str>,
        fx: &mut FnEffect,
        handlers: &mut BTreeSet<String>,
    ) {
        if let Expr::Ident(name) = obj {
            if self.host_effect_of(name, ctx).is_some() {
                return; // direct host receiver, already tagged
            }
        }
        self.scan_expr(obj, ctx, fx, handlers);
    }

    /// A bare identifier read, outside direct member-receiver position.
    fn scan_ident(&self, name: &str, ctx: Option<&str>, fx: &mut FnEffect) {
        if self.is_local(name, ctx) {
            return;
        }
        if self.globals.contains(name) {
            fx.reads.insert(name.to_string());
            return;
        }
        if self.functions.contains_key(name) {
            fx.calls.insert(name.to_string());
            return;
        }
        if let Some(effect) = self.host_effect_of(name, ctx) {
            // The host object itself flows into a value (`var m = model;`)
            // — every method becomes reachable through the alias, so the
            // whole declared surface applies.
            self.touch_host(fx, name, effect, ctx);
            if effect.is_nondeterministic() {
                self.record_nondet(fx, name, "*", effect, ctx);
            }
        }
        // Unresolvable identifiers are the closedness verifier's
        // business (free-identifier), not an effect.
    }

    /// A member access / method call with a syntactic receiver.
    fn scan_member(
        &self,
        obj: &Expr,
        prop: &str,
        _is_call: bool,
        ctx: Option<&str>,
        fx: &mut FnEffect,
    ) {
        if let Expr::Ident(name) = obj {
            if let Some(effect) = self.host_effect_of(name, ctx) {
                self.touch_host(fx, name, effect, ctx);
                if effect.is_nondeterministic() {
                    self.record_nondet(fx, name, prop, effect, ctx);
                }
                return;
            }
        }
        if self.is_dom_expr(obj, ctx) {
            self.touch_host(fx, "document", HostEffect::Dom, ctx);
        }
    }

    /// Attributes heap mutation by the interpreter's mutating methods
    /// (`push`/`pop`) through whatever the receiver roots at.
    fn scan_method_mutation(&self, obj: &Expr, method: &str, ctx: Option<&str>, fx: &mut FnEffect) {
        if !MUTATING_METHODS.contains(&method) {
            return;
        }
        if self.is_dom_expr(obj, ctx) {
            return; // DOM elements have no push/pop; interp would error
        }
        if let Expr::Ident(name) = obj {
            if self.host_effect_of(name, ctx).is_some() {
                return; // host objects define their own surface
            }
        }
        match self.chain_base(obj) {
            Expr::Ident(base)
                if !self.is_local(base, ctx) && self.globals.contains(base.as_str()) =>
            {
                fx.writes.insert(base.to_string());
            }
            _ => fx.unknown_writes = true,
        }
    }

    /// Statement-level flags for the cost walk: which function calls are
    /// guaranteed (not short-circuited), how many allocation sites the
    /// statement holds, and whether it can touch hosts (extra charges).
    fn stmt_flags(&self, expr: &Expr, ctx: Option<&str>) -> ExprFlags {
        let mut flags = ExprFlags::default();
        self.expr_flags(expr, ctx, true, &mut flags);
        flags
    }

    fn expr_flags(&self, expr: &Expr, ctx: Option<&str>, guaranteed: bool, out: &mut ExprFlags) {
        out.nodes += 1;
        match expr {
            Expr::Ident(name) => {
                if !self.is_local(name, ctx) && self.functions.contains_key(name.as_str()) {
                    // A bare function reference only *costs* when called;
                    // handled at the Call node.
                }
            }
            Expr::Array(elems) => {
                out.allocs += 1;
                if guaranteed {
                    out.guaranteed_allocs += 1;
                }
                for e in elems {
                    self.expr_flags(e, ctx, guaranteed, out);
                }
            }
            Expr::Object(props) => {
                out.allocs += 1;
                if guaranteed {
                    out.guaranteed_allocs += 1;
                }
                for (_, e) in props {
                    self.expr_flags(e, ctx, guaranteed, out);
                }
            }
            Expr::NewFloat32Array(e) => {
                out.allocs += 1;
                if guaranteed {
                    out.guaranteed_allocs += 1;
                }
                self.expr_flags(e, ctx, guaranteed, out);
            }
            Expr::Member(obj, _) | Expr::Index(obj, _) => {
                self.expr_flags(obj, ctx, guaranteed, out);
                if let Expr::Index(_, idx) = expr {
                    self.expr_flags(idx, ctx, guaranteed, out);
                }
            }
            Expr::Call(callee, args) => {
                match callee.as_ref() {
                    Expr::Ident(name)
                        if !self.is_local(name, ctx)
                            && self.functions.contains_key(name.as_str()) =>
                    {
                        out.calls.push((name.to_string(), guaranteed));
                    }
                    Expr::Member(obj, _) => {
                        // A method call may dispatch to a host or
                        // allocate a result (split/slice/getImageData);
                        // ceiling-side only.
                        out.method_calls += 1;
                        self.expr_flags(obj, ctx, guaranteed, out);
                    }
                    other => self.expr_flags(other, ctx, guaranteed, out),
                }
                for a in args {
                    self.expr_flags(a, ctx, guaranteed, out);
                }
            }
            Expr::Unary(_, e) => self.expr_flags(e, ctx, guaranteed, out),
            Expr::Binary(op, l, r) => {
                self.expr_flags(l, ctx, guaranteed, out);
                // Short-circuit operators may skip their right operand:
                // nothing in it is guaranteed.
                let rhs_guaranteed = guaranteed && *op != "&&" && *op != "||";
                self.expr_flags(r, ctx, rhs_guaranteed, out);
            }
            Expr::Undefined | Expr::Null | Expr::Bool(_) | Expr::Number(_) | Expr::Str(_) => {}
        }
    }
}

/// Flags gathered from one expression tree for the cost walk.
#[derive(Debug, Default)]
struct ExprFlags {
    /// Total expression nodes (each evaluation charges at most ~1 op,
    /// plus 1 for a host dispatch — the ceiling doubles this count).
    nodes: u64,
    /// Named function call sites: `(callee, guaranteed)`.
    calls: Vec<(String, bool)>,
    /// Method call sites (potential host dispatch / allocation).
    method_calls: u64,
    /// Allocation sites (array/object/Float32Array literals).
    allocs: u64,
    /// Allocation sites guaranteed to evaluate.
    guaranteed_allocs: u64,
}

/// Cost walk result for one statement block.
struct BlockCost {
    bound: CostBound,
    /// The block can `return` before its end, so nothing after it in the
    /// enclosing sequence is guaranteed.
    may_exit: bool,
    /// Guaranteed function calls (the floor folds callee floors in),
    /// and all possible calls (for the ceiling).
    guaranteed_calls: Vec<String>,
    all_calls: Vec<String>,
    /// Loops or event dispatch make any ceiling unsound.
    unbounded: bool,
}

/// Computes per-body cost bounds. `flags_of` supplies per-expression
/// facts (so the walk stays scope-aware without borrowing the pass
/// mutably).
fn body_cost(stmts: &[Stmt], flags_of: &mut dyn FnMut(&Expr) -> ExprFlags) -> BlockCost {
    let mut min_ops: u64 = 0;
    let mut max_ops: u64 = 0;
    let mut min_cells: u64 = 0;
    let mut max_cells: u64 = 0;
    let mut may_exit = false;
    let mut guaranteed_calls: Vec<String> = Vec::new();
    let mut all_calls: Vec<String> = Vec::new();
    let mut unbounded = false;
    let mut guaranteed = true; // statements after a possible return are not

    let add_expr = |e: &Expr,
                    guaranteed: bool,
                    _min_ops: &mut u64,
                    max_ops: &mut u64,
                    min_cells: &mut u64,
                    max_cells: &mut u64,
                    gcalls: &mut Vec<String>,
                    acalls: &mut Vec<String>,
                    flags_of: &mut dyn FnMut(&Expr) -> ExprFlags| {
        let f = flags_of(e);
        // Ceiling: every node evaluation charges one op, plus one extra
        // per node that could be a host/meter charge point.
        *max_ops = max_ops.saturating_add(f.nodes.saturating_mul(2));
        *max_cells = max_cells.saturating_add(f.allocs + f.method_calls);
        if guaranteed {
            *min_cells += f.guaranteed_allocs;
        }
        for (callee, call_guaranteed) in f.calls {
            if guaranteed && call_guaranteed {
                gcalls.push(callee.clone());
            }
            acalls.push(callee);
        }
    };

    for stmt in stmts {
        match stmt {
            Stmt::Var(_, init) => {
                if guaranteed {
                    min_ops += 1;
                }
                max_ops = max_ops.saturating_add(1);
                if let Some(e) = init {
                    add_expr(
                        e,
                        guaranteed,
                        &mut min_ops,
                        &mut max_ops,
                        &mut min_cells,
                        &mut max_cells,
                        &mut guaranteed_calls,
                        &mut all_calls,
                        flags_of,
                    );
                }
            }
            Stmt::Assign(target, value) => {
                if guaranteed {
                    min_ops += 1;
                }
                max_ops = max_ops.saturating_add(1);
                for e in [target, value] {
                    add_expr(
                        e,
                        guaranteed,
                        &mut min_ops,
                        &mut max_ops,
                        &mut min_cells,
                        &mut max_cells,
                        &mut guaranteed_calls,
                        &mut all_calls,
                        flags_of,
                    );
                }
            }
            Stmt::Expr(e) => {
                if guaranteed {
                    min_ops += 1;
                }
                max_ops = max_ops.saturating_add(1);
                add_expr(
                    e,
                    guaranteed,
                    &mut min_ops,
                    &mut max_ops,
                    &mut min_cells,
                    &mut max_cells,
                    &mut guaranteed_calls,
                    &mut all_calls,
                    flags_of,
                );
            }
            Stmt::Function(_) => {
                if guaranteed {
                    min_ops += 1;
                }
                max_ops = max_ops.saturating_add(1);
            }
            Stmt::Return(e) => {
                if guaranteed {
                    min_ops += 1;
                }
                max_ops = max_ops.saturating_add(1);
                if let Some(e) = e {
                    add_expr(
                        e,
                        guaranteed,
                        &mut min_ops,
                        &mut max_ops,
                        &mut min_cells,
                        &mut max_cells,
                        &mut guaranteed_calls,
                        &mut all_calls,
                        flags_of,
                    );
                }
                may_exit = true;
                guaranteed = false;
            }
            Stmt::If(cond, then, els) => {
                if guaranteed {
                    min_ops += 1;
                }
                max_ops = max_ops.saturating_add(1);
                add_expr(
                    cond,
                    guaranteed,
                    &mut min_ops,
                    &mut max_ops,
                    &mut min_cells,
                    &mut max_cells,
                    &mut guaranteed_calls,
                    &mut all_calls,
                    flags_of,
                );
                let then_cost = body_cost(then, flags_of);
                let else_cost = body_cost(els, flags_of);
                if guaranteed {
                    // Floor: the cheaper branch, body ops only (callee
                    // floors inside a branch are not guaranteed unless we
                    // tracked per-branch calls; stay conservative).
                    min_ops += then_cost.bound.min_ops.min(else_cost.bound.min_ops);
                    min_cells += then_cost
                        .bound
                        .min_new_cells
                        .min(else_cost.bound.min_new_cells);
                }
                match (then_cost.bound.max_ops, else_cost.bound.max_ops) {
                    (Some(a), Some(b)) => max_ops = max_ops.saturating_add(a.max(b)),
                    _ => unbounded = true,
                }
                match (then_cost.bound.max_new_cells, else_cost.bound.max_new_cells) {
                    (Some(a), Some(b)) => max_cells = max_cells.saturating_add(a.max(b)),
                    _ => unbounded = true,
                }
                all_calls.extend(then_cost.all_calls);
                all_calls.extend(else_cost.all_calls);
                unbounded |= then_cost.unbounded || else_cost.unbounded;
                if then_cost.may_exit || else_cost.may_exit {
                    may_exit = true;
                    guaranteed = false;
                }
            }
            Stmt::While(cond, body) => {
                if guaranteed {
                    min_ops += 1; // the statement itself; zero iterations
                }
                add_expr(
                    cond,
                    guaranteed,
                    &mut min_ops,
                    &mut max_ops,
                    &mut min_cells,
                    &mut max_cells,
                    &mut guaranteed_calls,
                    &mut all_calls,
                    flags_of,
                );
                let body_c = body_cost(body, flags_of);
                all_calls.extend(body_c.all_calls);
                unbounded = true; // iteration count is dynamic
                if body_c.may_exit {
                    may_exit = true;
                    guaranteed = false;
                }
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if guaranteed {
                    min_ops += 1;
                }
                if let Some(s) = init {
                    let init_c = body_cost(std::slice::from_ref(s), flags_of);
                    if guaranteed {
                        min_ops += init_c.bound.min_ops;
                        min_cells += init_c.bound.min_new_cells;
                        guaranteed_calls.extend(init_c.guaranteed_calls);
                    }
                    all_calls.extend(init_c.all_calls);
                }
                if let Some(e) = cond {
                    add_expr(
                        e,
                        guaranteed,
                        &mut min_ops,
                        &mut max_ops,
                        &mut min_cells,
                        &mut max_cells,
                        &mut guaranteed_calls,
                        &mut all_calls,
                        flags_of,
                    );
                }
                if let Some(s) = update {
                    let upd_c = body_cost(std::slice::from_ref(s), flags_of);
                    all_calls.extend(upd_c.all_calls);
                }
                let body_c = body_cost(body, flags_of);
                all_calls.extend(body_c.all_calls);
                unbounded = true;
                if body_c.may_exit {
                    may_exit = true;
                    guaranteed = false;
                }
            }
        }
    }

    BlockCost {
        bound: CostBound {
            min_ops,
            max_ops: if unbounded { None } else { Some(max_ops) },
            min_new_cells: min_cells,
            max_new_cells: if unbounded { None } else { Some(max_cells) },
        },
        may_exit,
        guaranteed_calls,
        all_calls,
        unbounded,
    }
}

/// BFS over the call graph from the given roots.
// lint: allow(string-keyed-map)
fn reachable_from(functions: &BTreeMap<String, FnEffect>, roots: Vec<String>) -> BTreeSet<String> {
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut work = roots;
    while let Some(f) = work.pop() {
        if !functions.contains_key(&f) || !reachable.insert(f.clone()) {
            continue;
        }
        if let Some(fx) = functions.get(&f) {
            for g in &fx.calls {
                if !reachable.contains(g) {
                    work.push(g.clone());
                }
            }
        }
    }
    reachable
}

/// Folds per-function cost bounds into a per-round bound over the
/// handler roots.
///
/// Floor: an offloaded round dispatches (at least) one pending event to
/// (at least) one registered handler — the *minimum* over handlers of
/// their interprocedural floors is guaranteed. Ceiling: all handlers
/// could be registered for the dispatched event, so the ceiling sums
/// every handler's interprocedural ceiling; any loop, recursion, or
/// `dispatchEvent` (event cascade) anywhere reachable voids it.
// lint: allow(string-keyed-map)
fn round_cost(functions: &BTreeMap<String, FnEffect>, handlers: &BTreeSet<String>) -> CostBound {
    let mut floors: Vec<(u64, u64)> = Vec::new();
    let mut ceiling_ops: Option<u64> = Some(0);
    let mut ceiling_cells: Option<u64> = Some(0);
    for h in handlers {
        if !functions.contains_key(h) {
            continue;
        }
        // lint: allow(string-keyed-map)
        let mut memo: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let floor = fn_floor(functions, h, &mut memo);
        floors.push(floor);
        match fn_ceiling(functions, h, &mut BTreeSet::new()) {
            Some((ops, cells)) => {
                ceiling_ops = ceiling_ops.map(|c| c.saturating_add(ops));
                ceiling_cells = ceiling_cells.map(|c| c.saturating_add(cells));
            }
            None => {
                ceiling_ops = None;
                ceiling_cells = None;
            }
        }
    }
    let (min_ops, min_new_cells) = floors.iter().copied().min().unwrap_or((0, 0));
    if floors.is_empty() {
        return CostBound {
            min_ops: 0,
            max_ops: Some(0),
            min_new_cells: 0,
            max_new_cells: Some(0),
        };
    }
    CostBound {
        min_ops,
        max_ops: ceiling_ops,
        min_new_cells,
        max_new_cells: ceiling_cells,
    }
}

/// Interprocedural floor for one function: its body floor (recursion
/// contributes zero — sound for a lower bound).
fn fn_floor(
    // lint: allow(string-keyed-map)
    functions: &BTreeMap<String, FnEffect>,
    name: &str,
    // lint: allow(string-keyed-map)
    memo: &mut BTreeMap<String, (u64, u64)>,
) -> (u64, u64) {
    if let Some(&v) = memo.get(name) {
        return v;
    }
    memo.insert(name.to_string(), (0, 0)); // cycle guard
    let Some(fx) = functions.get(name) else {
        return (0, 0);
    };
    // Body-only floor; guaranteed-call folding happens through the
    // per-body guaranteed_calls list, which FnEffect does not retain —
    // the body floor alone is already a sound per-round bound.
    let v = (fx.cost.min_ops, fx.cost.min_new_cells);
    memo.insert(name.to_string(), v);
    v
}

/// Interprocedural ceiling: body ceiling plus every call site's callee
/// ceiling; `None` on any loop, event dispatch, or recursion.
fn fn_ceiling(
    // lint: allow(string-keyed-map)
    functions: &BTreeMap<String, FnEffect>,
    name: &str,
    in_progress: &mut BTreeSet<String>,
) -> Option<(u64, u64)> {
    if !in_progress.insert(name.to_string()) {
        return None; // recursion
    }
    let result = (|| {
        let fx = functions.get(name)?;
        if fx.dispatches_events {
            return None; // event cascade: more handler runs
        }
        let mut ops = fx.cost.max_ops?;
        let mut cells = fx.cost.max_new_cells?;
        for callee in &fx.calls {
            let (c_ops, c_cells) = fn_ceiling(functions, callee, in_progress)?;
            ops = ops.saturating_add(c_ops);
            cells = cells.saturating_add(c_cells);
        }
        Some((ops, cells))
    })();
    in_progress.remove(name);
    result
}

/// Hoisted `var` names of one function body (no nested functions).
fn collect_vars_shallow(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Var(name, _) => {
                out.insert(name.to_string());
            }
            Stmt::If(_, then, els) => {
                collect_vars_shallow(then, out);
                collect_vars_shallow(els, out);
            }
            Stmt::While(_, body) => collect_vars_shallow(body, out),
            Stmt::For {
                init, update, body, ..
            } => {
                if let Some(s) = init {
                    collect_vars_shallow(std::slice::from_ref(s), out);
                }
                if let Some(s) = update {
                    collect_vars_shallow(std::slice::from_ref(s), out);
                }
                collect_vars_shallow(body, out);
            }
            Stmt::Function(_) | Stmt::Assign(..) | Stmt::Expr(_) | Stmt::Return(_) => {}
        }
    }
}

/// Every function declaration in a block, nested ones included.
fn collect_function_defs(stmts: &[Stmt]) -> Vec<FunctionDef> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<FunctionDef>) {
        for stmt in stmts {
            match stmt {
                Stmt::Function(def) => {
                    out.push(def.clone());
                    walk(&def.body, out);
                }
                Stmt::If(_, then, els) => {
                    walk(then, out);
                    walk(els, out);
                }
                Stmt::While(_, body) => walk(body, out),
                Stmt::For {
                    init, update, body, ..
                } => {
                    if let Some(s) = init {
                        walk(std::slice::from_ref(s), out);
                    }
                    if let Some(s) = update {
                        walk(std::slice::from_ref(s), out);
                    }
                    walk(body, out);
                }
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

/// Locals of one function whose every initializer/assignment is a
/// recognizable DOM expression — one-level alias tracking for the common
/// `var el = document.getElementById(..)` pattern.
fn dom_locals(def: &FunctionDef, scope: &FuncScope) -> BTreeSet<String> {
    let mut assigned_dom: BTreeSet<String> = BTreeSet::new();
    let mut assigned_other: BTreeSet<String> = BTreeSet::new();
    fn is_base_dom(expr: &Expr) -> bool {
        // `document` shadowing inside the same function would already
        // put the name in locals/globals; the caller filters params.
        match expr {
            Expr::Call(callee, _) => match callee.as_ref() {
                Expr::Member(obj, m) => {
                    matches!(obj.as_ref(), Expr::Ident(n) if n == "document")
                        && (m == "getElementById" || m == "createElement")
                }
                _ => false,
            },
            Expr::Member(obj, p) => {
                matches!(obj.as_ref(), Expr::Ident(n) if n == "document") && p == "body"
            }
            _ => false,
        }
    }
    fn walk(
        stmts: &[Stmt],
        assigned_dom: &mut BTreeSet<String>,
        assigned_other: &mut BTreeSet<String>,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::Var(name, init) => match init {
                    Some(e) if is_base_dom(e) => {
                        assigned_dom.insert(name.to_string());
                    }
                    Some(_) => {
                        assigned_other.insert(name.to_string());
                    }
                    None => {
                        assigned_other.insert(name.to_string());
                    }
                },
                Stmt::Assign(Expr::Ident(name), value) => {
                    if is_base_dom(value) {
                        assigned_dom.insert(name.to_string());
                    } else {
                        assigned_other.insert(name.to_string());
                    }
                }
                Stmt::If(_, then, els) => {
                    walk(then, assigned_dom, assigned_other);
                    walk(els, assigned_dom, assigned_other);
                }
                Stmt::While(_, body) => walk(body, assigned_dom, assigned_other),
                Stmt::For {
                    init, update, body, ..
                } => {
                    if let Some(s) = init {
                        walk(std::slice::from_ref(s), assigned_dom, assigned_other);
                    }
                    if let Some(s) = update {
                        walk(std::slice::from_ref(s), assigned_dom, assigned_other);
                    }
                    walk(body, assigned_dom, assigned_other);
                }
                _ => {}
            }
        }
    }
    walk(&def.body, &mut assigned_dom, &mut assigned_other);
    // Params can be rebound by callers; never DOM-trusted. A local both
    // DOM- and other-assigned is not trusted either (flow-insensitive).
    assigned_dom
        .into_iter()
        .filter(|n| scope.locals.contains(n) && !scope.params.contains(n))
        .filter(|n| !assigned_other.contains(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_with_model() -> EffectOptions {
        EffectOptions::new().with_host("model", HostEffect::Deterministic)
    }

    #[test]
    fn pure_function_is_pure() {
        let s = effect_summary(
            "function f(a) { var b = a + 1; return b; }\nf(1);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert_eq!(s.functions["f"].classify(), Effect::Pure);
        assert!(s.nondet.is_empty());
    }

    #[test]
    fn direct_global_writes_are_attributed() {
        let s = effect_summary(
            "var a = 0;\nvar b = 0;\nfunction h() { a = 1; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        let writes = s.round_writes.expect("attributable");
        assert!(writes.contains("a"));
        assert!(!writes.contains("b"));
        match s.functions["h"].classify() {
            Effect::Writes(set) => assert_eq!(set.len(), 1),
            other => panic!("expected writes, got {other}"),
        }
    }

    #[test]
    fn member_write_roots_at_the_global() {
        let s = effect_summary(
            "var state = {n: 0};\nfunction h() { state.n = 1; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert!(s.round_writes.unwrap().contains("state"));
    }

    #[test]
    fn push_on_global_rooted_receiver_is_a_write() {
        let s = effect_summary(
            "var log = [];\nfunction h() { log.push(1); }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert!(s.round_writes.unwrap().contains("log"));
    }

    #[test]
    fn dynamic_member_write_degrades_to_unknown() {
        let s = effect_summary(
            "var a = {n: 0};\nvar b = {n: 0};\n\
             function pick(x) { if (x) { return a; }\nreturn b; }\n\
             function h() { var o = pick(1); o.n = 5; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert!(s.round_writes.is_none(), "alias write must poison the set");
        assert_eq!(s.functions["h"].classify(), Effect::Unknown);
    }

    #[test]
    fn push_through_local_alias_degrades_to_unknown() {
        let s = effect_summary(
            "var log = [];\nfunction h() { var l = log; l.push(1); }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert!(s.round_writes.is_none());
    }

    #[test]
    fn dom_writes_stay_replayable() {
        let s = effect_summary(
            "function h() { document.getElementById(\"out\").textContent = \"x\"; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert_eq!(s.functions["h"].classify(), Effect::Host(HostEffect::Dom));
        assert!(s.round_writes.unwrap().is_empty());
        assert!(s.nondet.is_empty());
    }

    #[test]
    fn dom_local_alias_is_tracked() {
        let s = effect_summary(
            "function h() { var el = document.getElementById(\"out\"); el.textContent = \"x\"; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert!(s.round_writes.is_some(), "DOM alias must not poison");
        assert_eq!(s.functions["h"].classify(), Effect::Host(HostEffect::Dom));
    }

    #[test]
    fn nondet_host_call_is_flagged_with_source() {
        let opts = EffectOptions::new().with_host("clock", HostEffect::Clock);
        let s = effect_summary(
            "var t = 0;\nfunction h() { t = clock.now(); }\n\
             document.body.addEventListener(\"go\", h);",
            &opts,
        )
        .unwrap();
        let err = s.verdict().unwrap_err();
        match err {
            AnalyzeError::Nondeterministic(sources) => {
                assert_eq!(sources.len(), 1);
                assert_eq!(sources[0].host, "clock");
                assert_eq!(sources[0].method, "now");
                assert_eq!(sources[0].function, "h");
                assert_eq!(sources[0].effect, HostEffect::Clock);
            }
            other => panic!("expected nondet, got {other}"),
        }
    }

    #[test]
    fn nondet_host_alias_is_conservatively_flagged() {
        let opts = EffectOptions::new().with_host("rng", HostEffect::Random);
        let s = effect_summary(
            "var r = 0;\nfunction h() { var m = rng;\nr = m.next(); }\n\
             document.body.addEventListener(\"go\", h);",
            &opts,
        )
        .unwrap();
        assert!(s.is_nondeterministic());
        assert_eq!(s.nondet[0].method, "*");
    }

    #[test]
    fn deterministic_host_is_not_flagged() {
        let s = effect_summary(
            "var r = null;\nfunction h() { r = model.inference(3); }\n\
             document.body.addEventListener(\"go\", h);",
            &opts_with_model(),
        )
        .unwrap();
        assert!(s.verdict().is_ok());
        assert!(s.round_writes.unwrap().contains("r"));
    }

    #[test]
    fn toplevel_nondeterminism_breaks_replay_too() {
        let opts = EffectOptions::new().with_host("clock", HostEffect::Clock);
        let s = effect_summary("var boot = clock.now();", &opts).unwrap();
        assert!(s.is_nondeterministic());
        assert_eq!(s.nondet[0].function, TOPLEVEL);
    }

    #[test]
    fn cost_floor_counts_guaranteed_statements() {
        let s = effect_summary(
            "var a = 0;\nfunction h() { a = 1;\na = 2;\na = 3; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert!(s.cost.min_ops >= 3, "floor {} too low", s.cost.min_ops);
        assert!(s.cost.max_ops.is_some());
    }

    #[test]
    fn loops_void_the_ceiling_but_not_the_floor() {
        let s = effect_summary(
            "var a = 0;\nfunction h() { a = 1;\nwhile (a) { a = a + 1; } }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        assert!(s.cost.min_ops >= 2);
        assert_eq!(s.cost.max_ops, None);
    }

    #[test]
    fn early_return_caps_the_floor() {
        let s = effect_summary(
            "var a = 0;\nfunction h() { if (a) { return; }\na = 1;\na = 2;\na = 3;\na = 4; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        // The return path executes 2 statements (if + return); the floor
        // must not exceed that.
        assert!(s.cost.min_ops <= 2, "floor {} unsound", s.cost.min_ops);
    }

    #[test]
    fn guaranteed_exhaustion_flags_doomed_budgets() {
        let s = effect_summary(
            "var a = 0;\nfunction h() { a = 1;\na = 2;\na = 3; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        let tight = MeterLimits::default().with_ops(2);
        assert!(s.cost.guaranteed_exhaustion(&tight).is_some());
        let loose = MeterLimits::default().with_ops(1_000);
        assert!(s.cost.guaranteed_exhaustion(&loose).is_none());
    }

    #[test]
    fn paper_apps_are_fully_attributable() {
        use snapedge_webapp::HostEffect as HE;
        let opts = EffectOptions::new().with_host("model", HE::Deterministic);
        for (src, expected) in [
            (
                "var imageUrl = null;\nvar resultText = null;\n\
                 function onLoad() { imageUrl = document.getElementById(\"photo\").getAttribute(\"src\"); }\n\
                 function runInference() { resultText = model.inference(imageUrl);\n\
                 document.getElementById(\"result\").textContent = resultText; }\n\
                 document.body.addEventListener(\"click\", onLoad);\n\
                 document.body.addEventListener(\"run_inference\", runInference);",
                vec!["imageUrl", "resultText"],
            ),
            (
                "var feature = null;\n\
                 function runFront() { feature = model.front(\"input\"); }\n\
                 document.body.addEventListener(\"run_front\", runFront);",
                vec!["feature"],
            ),
        ] {
            let s = effect_summary(src, &opts).unwrap();
            assert!(s.verdict().is_ok());
            let writes = s.round_writes.expect("attributable");
            let got: Vec<&str> = writes.iter().map(String::as_str).collect();
            assert_eq!(got, expected, "{src}");
        }
    }

    #[test]
    fn cache_memoizes_by_source_and_hosts() {
        let mut cache = EffectCache::new();
        let page = "<html><body></body><script>var a = 1;</script></html>";
        let opts = EffectOptions::new();
        let first = cache.summary_html(page, &opts).unwrap();
        let second = cache.summary_html(page, &opts).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        // A different host surface is a different key.
        let other = EffectOptions::new().with_host("clock", HostEffect::Clock);
        cache.summary_html(page, &other).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn parse_failure_is_a_typed_error() {
        let err = effect_summary("var = ;", &EffectOptions::new()).unwrap_err();
        assert!(matches!(err, AnalyzeError::Parse(_)), "{err}");
    }

    #[test]
    fn render_mentions_lattice_points() {
        let s = effect_summary(
            "var a = 0;\nfunction h() { a = 1; }\n\
             document.body.addEventListener(\"go\", h);",
            &EffectOptions::new(),
        )
        .unwrap();
        let text = s.render();
        assert!(text.contains("writes(a)"), "{text}");
        assert!(text.contains("round write set: {a}"), "{text}");
        assert!(text.contains("[handler]"), "{text}");
    }
}
