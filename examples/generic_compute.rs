//! Offloading *arbitrary* computation — not just DNNs.
//!
//! The paper: "the snapshot allows more flexible offloading since it can
//! include any kind of computations as well as the ML algorithms; e.g., if
//! the pre/post processing ... is as heavy as the ML algorithms, they can
//! also be offloaded". This example offloads a pure-JavaScript prime sieve
//! with **no ML host at all**: the edge server needs nothing but a browser
//! and the offloading system, because the snapshot carries the code.
//!
//! ```sh
//! cargo run --example generic_compute
//! ```

use snapedge_webapp::{Browser, RunOutcome, SnapshotOptions, WebError};

const APP: &str = r#"<html><body>
<button id="go">Count primes</button>
<div id="out">idle</div>
</body>
<script>
var limit = 2000;
var primes = null;
function onClick() {
  document.getElementById("go").dispatchEvent("crunch");
}
function countPrimes() {
  var sieve = new Float32Array(limit);
  var count = 0;
  for (var i = 2; i < limit; i += 1) {
    if (sieve[i] == 0) {
      count += 1;
      for (var j = i + i; j < limit; j += i) { sieve[j] = 1; }
    }
  }
  primes = count;
  document.getElementById("out").textContent = "primes below " + limit + ": " + count;
}
document.getElementById("go").addEventListener("click", onClick);
document.getElementById("go").addEventListener("crunch", countPrimes);
</script></html>"#;

fn main() -> Result<(), WebError> {
    // --- The client runs the app and stops just before the heavy handler.
    let mut client = Browser::new();
    client.load_html(APP)?;
    client.set_offload_trigger(Some("crunch"));
    client.click("go")?;
    let outcome = client.run_until_idle()?;
    assert!(matches!(outcome, RunOutcome::OffloadPoint { .. }));
    println!(
        "client stopped at the offload point; screen still says: {:?}",
        client.element_text("out")?
    );

    // --- Snapshot to a completely generic edge server (no hosts).
    let snapshot = client.capture_snapshot(&SnapshotOptions::default())?;
    println!(
        "snapshot: {} bytes of self-contained HTML+JS",
        snapshot.size_bytes()
    );

    let mut server = Browser::new();
    server.load_html(snapshot.html())?;
    server.run_until_idle()?; // the sieve runs HERE, on the server
    println!("server computed: {:?}", server.element_text("out")?);

    // --- Result snapshot back; the client resumes with the answer.
    let result = server.capture_snapshot(&SnapshotOptions::default())?;
    client.restore_snapshot(&result)?;
    client.run_until_idle()?;
    println!(
        "client screen after migration: {:?}",
        client.element_text("out")?
    );
    assert_eq!(client.element_text("out")?, "primes below 2000: 303");
    println!("\nNo app code was ever installed on the server — the snapshot *is* the app.");
    Ok(())
}
