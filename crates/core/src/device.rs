//! Device latency models.
//!
//! The paper's testbed is an Odroid-XU4 client (ARM big.LITTLE, 2.0 GHz)
//! and an x86 edge server (3.4 GHz quad-core), both running DNNs in
//! JavaScript via Caffe.js (no GPU — the paper notes server times would
//! drop sharply with WebGL). We model each device as an *effective
//! throughput per layer type* (GFLOPS), the same granularity Neurosurgeon
//! [16] uses for its per-layer latency predictors, plus per-layer dispatch
//! overhead and a snapshot serialization cost model.
//!
//! Calibration targets the relative shape of the paper's Figs. 6–8:
//! client ≈ 10× slower than server, conv layers dominating, pool layers
//! cheap, snapshot capture/restore in the hundreds of milliseconds.

use snapedge_dnn::{NetworkProfile, NodeId};
use std::collections::BTreeMap;
use std::time::Duration;

/// A device's execution-speed model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: String,
    /// Effective GFLOPS per layer tag (`"conv"`, `"fc"`, ...).
    gflops: BTreeMap<&'static str, f64>,
    /// Fallback GFLOPS for tags not listed.
    default_gflops: f64,
    /// Fixed dispatch cost per layer (JS call overhead).
    pub per_layer_overhead: Duration,
    /// Fixed cost of any snapshot capture or restore.
    pub snapshot_fixed: Duration,
    /// Snapshot text generation throughput (bytes/second).
    pub capture_throughput: f64,
    /// Snapshot parse-and-execute throughput (bytes/second).
    pub restore_throughput: f64,
    /// LZ+Huffman compression throughput (input bytes/second).
    pub compress_throughput: f64,
    /// Decompression throughput (output bytes/second).
    pub decompress_throughput: f64,
}

impl DeviceProfile {
    /// Builds a profile from explicit parameters.
    pub fn new(name: &str, default_gflops: f64) -> DeviceProfile {
        DeviceProfile {
            name: name.to_string(),
            gflops: BTreeMap::new(),
            default_gflops,
            per_layer_overhead: Duration::from_micros(500),
            snapshot_fixed: Duration::from_millis(50),
            capture_throughput: 20.0e6,
            restore_throughput: 15.0e6,
            compress_throughput: 10.0e6,
            decompress_throughput: 40.0e6,
        }
    }

    /// Overrides the throughput for one layer tag, builder-style.
    pub fn with_gflops(mut self, tag: &'static str, gflops: f64) -> DeviceProfile {
        self.gflops.insert(tag, gflops);
        self
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Effective GFLOPS for a layer tag.
    pub fn gflops_for(&self, tag: &str) -> f64 {
        self.gflops.get(tag).copied().unwrap_or(self.default_gflops)
    }

    /// Simulated execution time of one layer.
    pub fn layer_time(&self, tag: &str, flops: u64) -> Duration {
        if flops == 0 {
            return self.per_layer_overhead;
        }
        self.per_layer_overhead
            + Duration::from_secs_f64(flops as f64 / (self.gflops_for(tag) * 1.0e9))
    }

    /// Simulated time to execute the layer range `(after, through]` of a
    /// profiled network: every layer with topo index greater than `after`
    /// (or all, when `None`) and at most `through` (or to the end, when
    /// `None`).
    pub fn exec_time(
        &self,
        profile: &NetworkProfile,
        after: Option<NodeId>,
        through: Option<NodeId>,
    ) -> Duration {
        let lo = after.map(|id| id.index()).unwrap_or(0);
        let hi = through.map(|id| id.index()).unwrap_or(usize::MAX);
        profile
            .layers()
            .iter()
            .filter(|l| {
                let i = l.id.index();
                i > 0 && (after.is_none() || i > lo) && i <= hi
            })
            .map(|l| self.layer_time(l.op_tag, l.flops))
            .sum()
    }

    /// Simulated time for the whole network.
    pub fn full_exec_time(&self, profile: &NetworkProfile) -> Duration {
        self.exec_time(profile, None, None)
    }

    /// Simulated snapshot capture time for a payload of `bytes`.
    pub fn capture_time(&self, bytes: u64) -> Duration {
        self.snapshot_fixed + Duration::from_secs_f64(bytes as f64 / self.capture_throughput)
    }

    /// Simulated snapshot restore (parse + execute) time.
    pub fn restore_time(&self, bytes: u64) -> Duration {
        self.snapshot_fixed + Duration::from_secs_f64(bytes as f64 / self.restore_throughput)
    }

    /// Simulated time to compress `bytes` of payload.
    pub fn compress_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.compress_throughput)
    }

    /// Simulated time to decompress back to `bytes` of payload.
    pub fn decompress_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.decompress_throughput)
    }
}

/// The client board: Odroid-XU4 (ARM big.LITTLE 2.0 GHz/1.5 GHz, 2 GB),
/// running Caffe.js under WebKit.
pub fn odroid_xu4() -> DeviceProfile {
    DeviceProfile::new("odroid-xu4", 0.12)
        .with_gflops("conv", 0.12)
        .with_gflops("fc", 0.15)
        .with_gflops("maxpool", 0.30)
        .with_gflops("avgpool", 0.30)
        .with_gflops("lrn", 0.15)
        .with_gflops("relu", 0.50)
        .with_gflops("softmax", 0.30)
        .with_gflops("concat", 1.00)
}

/// The edge server: x86 3.4 GHz quad-core, 16 GB — still JavaScript, so
/// roughly an order of magnitude over the board, not GPU-class.
pub fn edge_server_x86() -> DeviceProfile {
    let mut p = DeviceProfile::new("edge-server-x86", 1.2)
        .with_gflops("conv", 1.2)
        .with_gflops("fc", 1.5)
        .with_gflops("maxpool", 3.0)
        .with_gflops("avgpool", 3.0)
        .with_gflops("lrn", 1.5)
        .with_gflops("relu", 5.0)
        .with_gflops("softmax", 3.0)
        .with_gflops("concat", 10.0);
    p.per_layer_overhead = Duration::from_micros(100);
    p.snapshot_fixed = Duration::from_millis(20);
    p.capture_throughput = 120.0e6;
    p.restore_throughput = 90.0e6;
    p.compress_throughput = 60.0e6;
    p.decompress_throughput = 240.0e6;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapedge_dnn::zoo;

    #[test]
    fn server_is_roughly_10x_client() {
        let profile = zoo::googlenet().profile();
        let client = odroid_xu4().full_exec_time(&profile).as_secs_f64();
        let server = edge_server_x86().full_exec_time(&profile).as_secs_f64();
        let ratio = client / server;
        assert!((6.0..15.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn googlenet_client_time_is_tens_of_seconds() {
        // Fig. 6 shape: client-side GoogLeNet inference in Caffe.js takes
        // tens of seconds on the board.
        let profile = zoo::googlenet().profile();
        let t = odroid_xu4().full_exec_time(&profile).as_secs_f64();
        assert!((15.0..60.0).contains(&t), "client time = {t}");
    }

    #[test]
    fn agenet_is_faster_than_googlenet_but_same_order() {
        let g = zoo::googlenet().profile();
        let a = zoo::agenet().profile();
        let dev = odroid_xu4();
        assert!(dev.full_exec_time(&a) < dev.full_exec_time(&g));
    }

    #[test]
    fn exec_time_splits_additively_at_cuts() {
        let net = zoo::agenet();
        let profile = net.profile();
        let dev = odroid_xu4();
        let full = dev.full_exec_time(&profile);
        for cut in net.cut_points() {
            let front = dev.exec_time(&profile, None, Some(cut.id));
            let rear = dev.exec_time(&profile, Some(cut.id), None);
            let sum = front + rear;
            let diff = sum.abs_diff(full);
            assert!(
                diff < Duration::from_micros(10),
                "cut {}: {front:?} + {rear:?} != {full:?}",
                cut.label
            );
        }
    }

    #[test]
    fn pool_layers_are_cheap_relative_to_conv() {
        let dev = odroid_xu4();
        // Same FLOP count: conv and pool differ only via throughput.
        assert!(dev.layer_time("conv", 1_000_000) > dev.layer_time("maxpool", 1_000_000));
    }

    #[test]
    fn snapshot_costs_scale_with_size() {
        let dev = odroid_xu4();
        assert!(dev.capture_time(10_000_000) > dev.capture_time(100_000));
        // Small snapshots are dominated by the fixed cost.
        let small = dev.capture_time(90_000);
        assert!(small < Duration::from_millis(200), "{small:?}");
    }

    #[test]
    fn zero_flop_layers_cost_only_overhead() {
        let dev = odroid_xu4();
        assert_eq!(dev.layer_time("dropout", 0), dev.per_layer_overhead);
    }
}
