//! An endpoint: a browser plus a device model plus the shared clock.
//! The client board and the edge server are both just endpoints — the
//! paper's symmetry ("any generic edge server, equipped with a browser and
//! our offloading system") made concrete.

use crate::device::DeviceProfile;
use crate::mlhost::{CaffeJsHost, ExecTracker};
use crate::OffloadError;
use snapedge_dnn::{ExecMode, Network, NodeId, ParamStore};
use snapedge_net::SimClock;
use snapedge_trace::{EventKind, Lane, Tracer};
use snapedge_webapp::{Browser, RunOutcome, Snapshot, SnapshotOptions, WebError};
use std::time::Duration;

/// A browser-bearing machine participating in offloading.
pub struct Endpoint {
    name: String,
    /// The web runtime.
    pub browser: Browser,
    /// The device latency model.
    pub device: DeviceProfile,
    clock: SimClock,
    tracer: Tracer,
    lane: Lane,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("name", &self.name)
            .field("device", &self.device.name())
            .field("browser", &self.browser)
            .finish()
    }
}

impl Endpoint {
    /// Creates an endpoint charging simulated time to `clock`.
    pub fn new(name: &str, device: DeviceProfile, clock: SimClock) -> Endpoint {
        Endpoint {
            name: name.to_string(),
            browser: Browser::new(),
            device,
            clock,
            tracer: Tracer::disabled(),
            lane: Lane::Client,
        }
    }

    /// Attaches an event tracer, builder-style. Capture/restore then record
    /// `capture_{lane}` / `restore_{lane}` events on `lane`, and any model
    /// host installed afterwards records per-layer execution events.
    pub fn with_tracer(mut self, tracer: Tracer, lane: Lane) -> Endpoint {
        self.tracer = tracer;
        self.lane = lane;
        self
    }

    /// Endpoint name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lane this endpoint's trace events are recorded on.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// The attached tracer (disabled unless [`Endpoint::with_tracer`] was
    /// used).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn phase_name(&self, verb: &str) -> String {
        let suffix = match self.lane {
            Lane::Client => "client",
            Lane::Server => "server",
            Lane::Network => "network",
        };
        format!("{verb}_{suffix}")
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Registers the Caffe.js host (`model`) backed by `net`, returning the
    /// execution tracker.
    pub fn install_model(
        &mut self,
        net: Network,
        params: ParamStore,
        mode: ExecMode,
        cut: Option<NodeId>,
        seed: u64,
    ) -> ExecTracker {
        let host = CaffeJsHost::new(net, params, self.device.clone(), mode, self.clock.clone())
            .with_cut(cut)
            .with_seed(seed)
            .with_tracer(self.tracer.clone(), self.lane);
        let tracker = host.tracker();
        // The DNN host is a pure function of its inputs (seeded, no
        // clock): declare it deterministic so effect analysis can pass
        // apps that call `model.inference(..)`.
        self.browser.register_host_with_effect(
            "model",
            Box::new(host),
            snapedge_webapp::HostEffect::Deterministic,
        );
        tracker
    }

    /// Runs static effect analysis over app source against this
    /// endpoint's registered host surface, recording an instant
    /// `effect_verdict:{outcome}` trace event. The summary is memoized in
    /// `cache` keyed by source + host surface, so long-lived sessions
    /// analyze each app once.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::Analyze`] when the app does not parse or
    /// reaches nondeterministic host APIs (clock/random/IO) — replaying
    /// its snapshot elsewhere could diverge, so it must stay local. The
    /// rejection happens before any link traffic.
    pub fn gate_effects(
        &mut self,
        html_src: &str,
        cache: &mut snapedge_analyze::EffectCache,
    ) -> Result<snapedge_analyze::EffectSummary, OffloadError> {
        let opts = snapedge_analyze::EffectOptions::from_host_effects(self.browser.host_effects());
        let result = cache.summary_html(html_src, &opts);
        let outcome = match &result {
            Ok(s) if s.is_nondeterministic() => "nondeterministic",
            Ok(_) => "ok",
            Err(_) => "error",
        };
        let now = self.clock.now();
        self.tracer.record(
            &format!("effect_verdict:{outcome}"),
            self.lane,
            EventKind::EffectVerdict,
            now,
            now,
        );
        let summary = result.map_err(OffloadError::Analyze)?;
        summary.verdict().map_err(OffloadError::Analyze)?;
        Ok(summary)
    }

    /// Captures a snapshot, charging the device's capture time to the
    /// clock; returns the snapshot and the charged duration.
    ///
    /// When `options.verify` is set, the captured snapshot is statically
    /// verified (closedness, host-API surface, reserved-prefix hygiene)
    /// before it is handed to the caller, and a `verify_{lane}` trace
    /// event is recorded. An unshippable snapshot is rejected here —
    /// before any link traffic and before the retry budget is touched.
    ///
    /// # Errors
    ///
    /// Propagates snapshot serialization failures; returns
    /// [`OffloadError::Verify`] when verification finds error-severity
    /// diagnostics.
    pub fn capture(
        &mut self,
        options: &SnapshotOptions,
    ) -> Result<(Snapshot, Duration), OffloadError> {
        let start = self.clock.now();
        let snapshot = self.browser.capture_snapshot(options)?;
        let cost = self.device.capture_time(snapshot.size_bytes());
        self.clock.advance_by(cost);
        self.tracer.record_bytes(
            &self.phase_name("capture"),
            self.lane,
            EventKind::Capture,
            start,
            self.clock.now(),
            Some(snapshot.size_bytes()),
        );
        if options.verify {
            self.verify_script(
                snapshot.html(),
                snapedge_analyze::Mode::Snapshot,
                Vec::new(),
            )?;
        }
        Ok((snapshot, cost))
    }

    /// Statically verifies generated snapshot (or delta) source against
    /// this endpoint's host surface, recording a `verify_{lane}` event.
    ///
    /// # Errors
    ///
    /// Returns [`OffloadError::Verify`] when the analyzer reports
    /// error-severity diagnostics.
    pub fn verify_script(
        &mut self,
        source: &str,
        mode: snapedge_analyze::Mode,
        ambient: Vec<String>,
    ) -> Result<(), OffloadError> {
        let opts = snapedge_analyze::AnalysisOptions {
            mode,
            hosts: self.browser.host_names(),
            ambient,
        };
        let report = match mode {
            snapedge_analyze::Mode::Delta => snapedge_analyze::analyze_script(source, &opts),
            _ => snapedge_analyze::analyze_html(source, &opts),
        };
        let now = self.clock.now();
        self.tracer.record_bytes(
            &self.phase_name("verify"),
            self.lane,
            EventKind::Verify,
            now,
            now,
            Some(source.len() as u64),
        );
        if report.has_errors() {
            let findings: Vec<String> = report
                .diagnostics
                .iter()
                .filter(|d| d.severity == snapedge_analyze::Severity::Error)
                .map(|d| d.to_string())
                .collect();
            return Err(OffloadError::Verify(format!(
                "snapshot failed static verification ({}): {}",
                report.summary(),
                findings.join("; ")
            )));
        }
        Ok(())
    }

    /// Restores a snapshot, charging the device's restore time; returns
    /// the charged duration.
    ///
    /// # Errors
    ///
    /// Propagates snapshot parse/execution failures.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<Duration, OffloadError> {
        let start = self.clock.now();
        self.browser.restore_snapshot(snapshot)?;
        let cost = self.device.restore_time(snapshot.size_bytes());
        self.clock.advance_by(cost);
        self.tracer.record_bytes(
            &self.phase_name("restore"),
            self.lane,
            EventKind::Restore,
            start,
            self.clock.now(),
            Some(snapshot.size_bytes()),
        );
        Ok(cost)
    }

    /// Runs the event loop to idle (or to the armed offload point). DNN
    /// time is charged by the model host as handlers execute.
    ///
    /// When a resource meter with a virtual-time slice is installed on
    /// this endpoint's browser, the run is killed at the slice: the
    /// clock rewinds to `start + slice` (the tenant is only *charged*
    /// its slice, not the overrun the simulation had to compute to
    /// detect it) and a `"slice"` [`WebError::ResourceExhausted`] is
    /// returned with limit/used in microseconds. A metered run that
    /// finishes in budget records a `meter_tick` trace event carrying
    /// the segment's op count.
    ///
    /// # Errors
    ///
    /// Propagates app runtime errors, including meter exhaustion raised
    /// inside the interpreter (ops / heap / string / depth caps).
    pub fn run(&mut self) -> Result<RunOutcome, OffloadError> {
        let slice = self.browser.meter().and_then(|m| m.limits().time_slice);
        let start = self.clock.now();
        let outcome = self.browser.run_until_idle()?;
        if let Some(slice) = slice {
            let elapsed = self.clock.now() - start;
            if elapsed > slice {
                self.clock.rewind_to(start + slice);
                return Err(OffloadError::Web(WebError::ResourceExhausted {
                    resource: "slice".to_string(),
                    limit: slice.as_micros() as u64,
                    used: elapsed.as_micros() as u64,
                }));
            }
        }
        if let Some(meter) = self.browser.meter() {
            let now = self.clock.now();
            self.tracer.record_bytes(
                &self.phase_name("meter_tick"),
                self.lane,
                EventKind::MeterTick,
                now,
                now,
                Some(meter.run_ops()),
            );
        }
        Ok(outcome)
    }
}
