//! String interning for MiniJS identifiers.
//!
//! Every identifier the lexer produces is interned once into a
//! thread-local [`Interner`] and carried through the AST, the
//! interpreter and the snapshot engine as a [`Symbol`] — a dense `u32`
//! assigned in first-intern order. All hot-path name comparisons
//! (keyword checks, frame lookups, global/function/host resolution)
//! become integer compares instead of per-call string compares, the
//! idiom rhai uses for its pre-hashed identifiers.
//!
//! The interner hashes with FNV-1a (no external dependencies, matching
//! the analyzer's memo keys) and keeps the backing text as `Rc<str>`, so
//! resolving a symbol back to its name is a cheap pointer clone.
//! Interning is deterministic: the well-known names below occupy fixed
//! indices, and everything after them is numbered in parse order.
//! Symbols are only meaningful within their thread — `Rc` already makes
//! the AST `!Send`, so a symbol can never cross threads.
//!
//! Interning is purely in-memory: nothing about wire formats changes,
//! and any output that used to be emitted in *name* order must resolve
//! and sort, never iterate symbol-keyed maps directly (enforced by the
//! `string-keyed-map` lint rule plus the bit-identity suite in
//! `tests/interning.rs`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// An interned identifier: a dense index into the thread-local
/// [`Interner`]. Comparing two symbols compares two `u32`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

/// Names interned at fixed indices before any user code, so keyword and
/// built-in checks compile down to constant compares. Order is part of
/// the determinism contract — append only.
const WELL_KNOWN: &[&str] = &[
    "var",
    "function",
    "return",
    "if",
    "else",
    "while",
    "for",
    "typeof",
    "true",
    "false",
    "null",
    "undefined",
    "new",
    "Float32Array",
    "document",
    "console",
    "Math",
    "body",
    "<body>",
    "__snapedge_restore",
    "__snapedge_apply_delta",
];

macro_rules! well_known {
    ($($(#[$doc:meta])* $name:ident = $idx:expr;)*) => {
        impl Symbol {
            $( $(#[$doc])* pub const $name: Symbol = Symbol($idx); )*
        }
    };
}

well_known! {
    /// `var`
    VAR = 0;
    /// `function`
    FUNCTION = 1;
    /// `return`
    RETURN = 2;
    /// `if`
    IF = 3;
    /// `else`
    ELSE = 4;
    /// `while`
    WHILE = 5;
    /// `for`
    FOR = 6;
    /// `typeof`
    TYPEOF = 7;
    /// `true`
    TRUE = 8;
    /// `false`
    FALSE = 9;
    /// `null`
    NULL = 10;
    /// `undefined`
    UNDEFINED = 11;
    /// `new`
    NEW = 12;
    /// `Float32Array`
    FLOAT32_ARRAY = 13;
    /// `document`
    DOCUMENT = 14;
    /// `console`
    CONSOLE = 15;
    /// `Math`
    MATH = 16;
    /// `body`
    BODY = 17;
    /// The DOM body anchor sentinel used by delta node keys.
    BODY_ANCHOR = 18;
    /// The snapshot restore wrapper.
    SNAPEDGE_RESTORE = 19;
    /// The delta apply wrapper.
    SNAPEDGE_APPLY_DELTA = 20;
}

impl Symbol {
    /// The dense index of this symbol.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Interns `name` in the thread-local interner.
    #[must_use]
    pub fn intern(name: &str) -> Symbol {
        INTERNER.with(|i| i.borrow_mut().intern(name))
    }

    /// The interned text, as a cheap `Rc` clone.
    #[must_use]
    pub fn resolve(self) -> Rc<str> {
        INTERNER.with(|i| i.borrow().resolve(self))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

/// FNV-1a over a byte string — the same dependency-free hash the
/// analyzer's effect cache uses.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic string interner: names map to dense [`Symbol`]s in
/// first-intern order, with the [well-known names](Symbol::VAR) at fixed
/// indices.
#[derive(Debug)]
pub struct Interner {
    // FNV-keyed bucket map; never iterated (lookup only), so the
    // non-deterministic iteration order of HashMap cannot leak.
    // lint: allow(hash-iter)
    buckets: HashMap<u64, Vec<u32>>,
    names: Vec<Rc<str>>,
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    /// An interner pre-seeded with the well-known names.
    #[must_use]
    pub fn new() -> Interner {
        let mut interner = Interner {
            buckets: HashMap::new(),
            names: Vec::new(),
        };
        for name in WELL_KNOWN {
            interner.intern(name);
        }
        interner
    }

    /// Interns `name`, returning its (stable) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        let hash = fnv1a(name.as_bytes());
        let bucket = self.buckets.entry(hash).or_default();
        for &idx in bucket.iter() {
            if &*self.names[idx as usize] == name {
                return Symbol(idx);
            }
        }
        // 4 billion distinct identifiers in one thread is out of scope
        // for a browser simulation.
        assert!(u32::try_from(self.names.len()).is_ok(), "interner overflow");
        let idx = self.names.len() as u32;
        self.names.push(Rc::from(name));
        bucket.push(idx);
        Symbol(idx)
    }

    /// Resolves a symbol back to its text.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> Rc<str> {
        Rc::clone(&self.names[sym.0 as usize])
    }

    /// Number of distinct names interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `false`: the well-known names are always present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

thread_local! {
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::new());
}

/// An identifier: pre-interned symbol plus its text. The text rides
/// along as an `Rc<str>` so error messages and the pretty-printer never
/// need an interner round-trip; equality compares only the symbol.
#[derive(Clone)]
pub struct Ident {
    sym: Symbol,
    name: Rc<str>,
}

impl fmt::Debug for Ident {
    /// Prints like the `String` it replaced (`"name"`), keeping every
    /// `{:?}`-formatted diagnostic byte-identical.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.name, f)
    }
}

impl Ident {
    /// Interns `name` into an identifier.
    #[must_use]
    pub fn new(name: &str) -> Ident {
        let sym = Symbol::intern(name);
        Ident {
            sym,
            name: sym.resolve(),
        }
    }

    /// Rebuilds the identifier for `sym`.
    #[must_use]
    pub fn from_symbol(sym: Symbol) -> Ident {
        Ident {
            sym,
            name: sym.resolve(),
        }
    }

    /// The interned symbol.
    #[must_use]
    pub fn sym(&self) -> Symbol {
        self.sym
    }

    /// The identifier text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.name
    }
}

impl Deref for Ident {
    type Target = str;

    fn deref(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Ident) -> bool {
        self.sym == other.sym
    }
}

impl Eq for Ident {}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Ident) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    /// Orders by *name*, not symbol — `Ident`-keyed collections keep the
    /// same deterministic order the `String`-keyed ones had.
    fn cmp(&self, other: &Ident) -> std::cmp::Ordering {
        self.name.cmp(&other.name)
    }
}

impl std::hash::Hash for Ident {
    /// Hashes the *text* (name↔symbol is bijective per thread, so this
    /// stays consistent with `Eq`) — required for the `Borrow<str>`
    /// contract.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        &*self.name == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        &*self.name == *other
    }
}

impl PartialEq<Ident> for str {
    fn eq(&self, other: &Ident) -> bool {
        self == &*other.name
    }
}

impl PartialEq<Ident> for &str {
    fn eq(&self, other: &Ident) -> bool {
        *self == &*other.name
    }
}

impl From<&str> for Ident {
    fn from(name: &str) -> Ident {
        Ident::new(name)
    }
}

impl From<String> for Ident {
    fn from(name: String) -> Ident {
        Ident::new(&name)
    }
}

impl From<&Ident> for String {
    fn from(ident: &Ident) -> String {
        ident.name.to_string()
    }
}

impl std::borrow::Borrow<str> for Ident {
    fn borrow(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_names_have_fixed_indices() {
        assert_eq!(Symbol::intern("var"), Symbol::VAR);
        assert_eq!(Symbol::intern("function"), Symbol::FUNCTION);
        assert_eq!(Symbol::intern("document"), Symbol::DOCUMENT);
        assert_eq!(Symbol::intern("<body>"), Symbol::BODY_ANCHOR);
        assert_eq!(
            Symbol::intern("__snapedge_apply_delta"),
            Symbol::SNAPEDGE_APPLY_DELTA
        );
        for (i, name) in WELL_KNOWN.iter().enumerate() {
            assert_eq!(Symbol::intern(name).index(), i as u32, "{name}");
        }
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a = Symbol::intern("some_user_name_a");
        let b = Symbol::intern("some_user_name_b");
        assert_ne!(a, b);
        assert_eq!(Symbol::intern("some_user_name_a"), a);
        assert_eq!(&*a.resolve(), "some_user_name_a");
    }

    #[test]
    fn fresh_interner_numbers_in_first_intern_order() {
        let mut interner = Interner::new();
        let base = interner.len() as u32;
        assert_eq!(interner.intern("zzz").index(), base);
        assert_eq!(interner.intern("aaa").index(), base + 1);
        assert_eq!(interner.intern("zzz").index(), base);
        assert_eq!(&*interner.resolve(Symbol(base + 1)), "aaa");
    }

    #[test]
    fn ident_compares_by_symbol_but_orders_by_name() {
        let z: Ident = "zfirst_interned".into();
        let a: Ident = "alater_interned".into();
        assert_ne!(z, a);
        assert_eq!(z, Ident::new("zfirst_interned"));
        assert!(a < z, "Ord must follow the text, not the intern order");
        assert_eq!(z, "zfirst_interned");
        assert_eq!("zfirst_interned", z);
        assert_eq!(z.as_str(), "zfirst_interned");
        assert_eq!(format!("{z}"), "zfirst_interned");
    }

    #[test]
    fn ident_derefs_to_str() {
        let i = Ident::new("counter");
        assert!(i.starts_with("count"));
        assert_eq!(i.len(), 7);
        let owned: String = (&i).into();
        assert_eq!(owned, "counter");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
