//! # snapedge-net
//!
//! A deterministic network model — the stand-in for the paper's Ethernet
//! link shaped to 30 Mbps with `netem` [18].
//!
//! Everything runs in **virtual time**: a [`SimClock`] advances only when
//! the simulation says so, so every experiment is exactly reproducible.
//! A [`Link`] serializes transfers FIFO at a configured bandwidth and
//! latency (one direction; use two links for a duplex channel), and an
//! [`EventQueue`] orders deferred work — which is how the offloading
//! runtime overlaps model pre-sending with client-side execution, exactly
//! the race the paper's "offloading before/after ACK" configurations probe.
//!
//! # Example
//!
//! ```
//! use snapedge_net::{LinkConfig, Link, SimClock};
//! use std::time::Duration;
//!
//! let clock = SimClock::new();
//! // The paper's network: 30 Mbps, emulating good Wi-Fi.
//! let mut link = Link::new(LinkConfig::wifi_30mbps());
//! let t = link.schedule(clock.now(), 44 * 1024 * 1024).unwrap();
//! // 44 MiB at 30 Mbps is a bit over 12 seconds.
//! assert!(t.finish > Duration::from_secs(12));
//! assert!(t.finish < Duration::from_secs(13));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
pub mod compress;
mod estimator;
mod fault;
mod health;
mod link;
mod queue;

pub use clock::SimClock;
pub use estimator::BandwidthEstimator;
pub use fault::{FaultKind, FaultPlan, FaultWindow, LinkState};
pub use health::{LinkHealth, LinkPrediction, MAX_PREDICTED_RETRIES};
pub use link::{Link, LinkConfig, NetError, Transfer};
pub use queue::EventQueue;
