//! JSON-lines export/import — one event object per line, no external
//! dependencies. The format is deliberately flat so benches can be piped
//! into `jq`, a spreadsheet, or a flame-chart converter.
//!
//! ```text
//! {"name":"transfer_up","lane":"network","kind":"transfer","start_ns":12000000,"end_ns":95000000,"bytes":261352,"depth":0}
//! ```

use crate::event::{Event, EventKind, Lane};
use crate::trace::Trace;
use std::fmt;
use std::time::Duration;

/// Errors from [`Trace::from_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Trace {
    /// Serializes every event as one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str("{\"name\":\"");
            escape_into(&mut out, &e.name);
            out.push_str("\",\"lane\":\"");
            out.push_str(e.lane.as_str());
            out.push_str("\",\"kind\":\"");
            out.push_str(e.kind.as_str());
            out.push_str("\",\"start_ns\":");
            out.push_str(&(e.start.as_nanos() as u64).to_string());
            out.push_str(",\"end_ns\":");
            out.push_str(&(e.end.as_nanos() as u64).to_string());
            if let Some(bytes) = e.bytes {
                out.push_str(",\"bytes\":");
                out.push_str(&bytes.to_string());
            }
            out.push_str(",\"depth\":");
            out.push_str(&e.depth.to_string());
            out.push_str("}\n");
        }
        out
    }

    /// Parses the output of [`Trace::to_jsonl`] back. Accepts the flat
    /// object-per-line format with fields in any order; unknown fields are
    /// rejected (they indicate a format drift the caller should know
    /// about). Blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] naming the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Trace, TraceParseError> {
        let mut events = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            events.push(parse_line(trimmed).map_err(|message| TraceParseError {
                line: line_no,
                message,
            })?);
        }
        Ok(Trace::from_events(events))
    }
}

fn parse_line(line: &str) -> Result<Event, String> {
    let mut p = Parser::new(line);
    p.expect('{')?;
    let mut name: Option<String> = None;
    let mut lane: Option<Lane> = None;
    let mut kind: Option<EventKind> = None;
    let mut start_ns: Option<u64> = None;
    let mut end_ns: Option<u64> = None;
    let mut bytes: Option<u64> = None;
    let mut depth: Option<u32> = None;
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "name" => name = Some(p.string()?),
            "lane" => {
                let s = p.string()?;
                lane = Some(Lane::parse(&s).ok_or_else(|| format!("unknown lane {s:?}"))?);
            }
            "kind" => {
                let s = p.string()?;
                kind = Some(EventKind::parse(&s).ok_or_else(|| format!("unknown kind {s:?}"))?);
            }
            "start_ns" => start_ns = Some(p.number()?),
            "end_ns" => end_ns = Some(p.number()?),
            "bytes" => bytes = Some(p.number()?),
            "depth" => depth = Some(p.number()? as u32),
            other => return Err(format!("unknown field {other:?}")),
        }
        if !p.comma_or_close()? {
            break;
        }
    }
    p.end()?;
    Ok(Event {
        name: name.ok_or("missing field \"name\"")?,
        lane: lane.ok_or("missing field \"lane\"")?,
        kind: kind.ok_or("missing field \"kind\"")?,
        start: Duration::from_nanos(start_ns.ok_or("missing field \"start_ns\"")?),
        end: Duration::from_nanos(end_ns.ok_or("missing field \"end_ns\"")?),
        bytes,
        depth: depth.ok_or("missing field \"depth\"")?,
    })
}

/// A minimal cursor over the one-line object syntax emitted above.
struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { rest: s }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(c) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!("expected {c:?} at {:?}", truncate(self.rest))),
        }
    }

    /// `,` continues the object, `}` closes it.
    fn comma_or_close(&mut self) -> Result<bool, String> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix(',') {
            self.rest = rest;
            Ok(true)
        } else if let Some(rest) = self.rest.strip_prefix('}') {
            self.rest = rest;
            Ok(false)
        } else {
            Err(format!("expected ',' or '}}' at {:?}", truncate(self.rest)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let hex: String = (0..4)
                            .filter_map(|_| chars.next().map(|(_, h)| h))
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad codepoint \\u{hex}"))?,
                        );
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let digits: usize = self.rest.bytes().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return Err(format!("expected a number at {:?}", truncate(self.rest)));
        }
        let (num, rest) = self.rest.split_at(digits);
        self.rest = rest;
        num.parse().map_err(|e| format!("bad number {num:?}: {e}"))
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing content {:?}", truncate(self.rest)))
        }
    }
}

fn truncate(s: &str) -> &str {
    &s[..s.len().min(24)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            Event {
                name: "exec \"quoted\"\\weird\nname".into(),
                lane: Lane::Client,
                kind: EventKind::Exec,
                start: ms(0),
                end: ms(5),
                bytes: None,
                depth: 0,
            },
            Event {
                name: "transfer_up".into(),
                lane: Lane::Network,
                kind: EventKind::Transfer,
                start: ms(5),
                end: ms(17),
                bytes: Some(261_352),
                depth: 0,
            },
            Event {
                name: "conv1".into(),
                lane: Lane::Server,
                kind: EventKind::Layer,
                start: ms(17),
                end: ms(18),
                bytes: None,
                depth: 1,
            },
        ])
    }

    #[test]
    fn roundtrip_is_exact() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        assert_eq!(text.lines().count(), 3);
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn bytes_field_is_omitted_when_absent() {
        let text = sample_trace().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines[0].contains("\"bytes\""));
        assert!(lines[1].contains("\"bytes\":261352"));
    }

    #[test]
    fn fields_parse_in_any_order() {
        let line = r#"{"depth":2,"end_ns":9000,"kind":"queue","name":"wait","start_ns":4000,"lane":"network"}"#;
        let t = Trace::from_jsonl(line).unwrap();
        assert_eq!(t.events()[0].name, "wait");
        assert_eq!(t.events()[0].kind, EventKind::Queue);
        assert_eq!(t.events()[0].depth, 2);
        assert_eq!(t.events()[0].start, Duration::from_nanos(4000));
    }

    #[test]
    fn failover_events_export_and_reimport() {
        // The fleet layer's instant markers survive the JSONL round-trip
        // with their stable kind names.
        let trace = Trace::from_events(vec![
            Event {
                name: "server_select:edge-b".into(),
                lane: Lane::Client,
                kind: EventKind::ServerSelect,
                start: ms(3),
                end: ms(3),
                bytes: None,
                depth: 0,
            },
            Event {
                name: "handoff:edge-a->edge-b".into(),
                lane: Lane::Client,
                kind: EventKind::Handoff,
                start: ms(3),
                end: ms(3),
                bytes: None,
                depth: 0,
            },
        ]);
        let text = trace.to_jsonl();
        assert!(text.contains("\"kind\":\"server_select\""));
        assert!(text.contains("\"kind\":\"handoff\""));
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.events()[1].kind, EventKind::Handoff);
    }

    #[test]
    fn prediction_events_export_and_reimport() {
        // The proactive predictor's instant markers survive the JSONL
        // round-trip with their stable kind names.
        let trace = Trace::from_events(vec![
            Event {
                name: "predict:local".into(),
                lane: Lane::Client,
                kind: EventKind::Predict,
                start: ms(7),
                end: ms(7),
                bytes: None,
                depth: 0,
            },
            Event {
                name: "proactive_local".into(),
                lane: Lane::Client,
                kind: EventKind::ProactiveLocal,
                start: ms(7),
                end: ms(7),
                bytes: None,
                depth: 0,
            },
        ]);
        let text = trace.to_jsonl();
        assert!(text.contains("\"kind\":\"predict\""));
        assert!(text.contains("\"kind\":\"proactive_local\""));
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.events()[0].kind, EventKind::Predict);
        assert_eq!(back.events()[1].kind, EventKind::ProactiveLocal);
    }

    #[test]
    fn metering_events_export_and_reimport() {
        // The sandboxing layer's instant markers survive the JSONL
        // round-trip: a tick carrying the segment's op count in `bytes`,
        // and an exhaustion naming the tripped resource.
        let trace = Trace::from_events(vec![
            Event {
                name: "meter_tick".into(),
                lane: Lane::Server,
                kind: EventKind::MeterTick,
                start: ms(9),
                end: ms(9),
                bytes: Some(12_345),
                depth: 0,
            },
            Event {
                name: "meter_exhausted:ops".into(),
                lane: Lane::Server,
                kind: EventKind::MeterExhausted,
                start: ms(11),
                end: ms(11),
                bytes: None,
                depth: 0,
            },
        ]);
        let text = trace.to_jsonl();
        assert!(text.contains("\"kind\":\"meter_tick\""));
        assert!(text.contains("\"kind\":\"meter_exhausted\""));
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.events()[0].bytes, Some(12_345));
        assert_eq!(back.events()[1].kind, EventKind::MeterExhausted);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", sample_trace().to_jsonl());
        assert_eq!(Trace::from_jsonl(&text).unwrap().len(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let good =
            r#"{"name":"a","lane":"client","kind":"exec","start_ns":0,"end_ns":1,"depth":0}"#;
        let bad = "{\"name\":\"a\"";
        let err = Trace::from_jsonl(&format!("{good}\n{bad}\n")).unwrap_err();
        assert_eq!(err.line, 2);
        let err = Trace::from_jsonl(r#"{"name":"a","lane":"lava"}"#).unwrap_err();
        assert!(err.message.contains("unknown lane"));
        let err = Trace::from_jsonl(r#"{"surprise":1}"#).unwrap_err();
        assert!(err.message.contains("unknown field"));
    }

    #[test]
    fn missing_fields_are_errors() {
        let err = Trace::from_jsonl(r#"{"name":"a","lane":"client","kind":"exec","depth":0}"#)
            .unwrap_err();
        assert!(err.message.contains("start_ns"), "{}", err.message);
    }

    #[test]
    fn empty_input_is_an_empty_trace() {
        assert!(Trace::from_jsonl("").unwrap().is_empty());
    }
}
