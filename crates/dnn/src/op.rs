//! Layer operations and their static metadata (output shape, FLOPs,
//! parameter counts).
//!
//! The FLOP model follows the convention used by Neurosurgeon [16] and most
//! of the systems literature: one multiply-accumulate = 2 FLOPs. FLOP counts
//! feed the device latency model in `snapedge-core`, which is how the
//! client/server execution times of Figs. 6–8 are derived.

use crate::DnnError;
use snapedge_tensor::{ops, Shape};

pub use snapedge_tensor::ops::PoolKind;

/// A layer operation. `Op` carries hyper-parameters only; learned
/// parameters live in a [`ParamStore`](crate::ParamStore).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// The network input (exactly one per network, always node 0).
    Input,
    /// 2-D convolution (square kernel).
    Conv {
        /// Number of output channels (filters).
        out_channels: usize,
        /// Kernel side length.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        pad: usize,
        /// Channel groups (Caffe `group`; 1 for ungrouped).
        groups: usize,
    },
    /// Rectified linear unit.
    Relu,
    /// 2-D pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window side length.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        pad: usize,
    },
    /// Local response normalization across channels.
    Lrn {
        /// Window size across channels.
        local_size: usize,
        /// Scaling parameter.
        alpha: f32,
        /// Exponent.
        beta: f32,
        /// Bias constant.
        k: f32,
    },
    /// Fully-connected (inner product).
    Fc {
        /// Number of output features.
        out_features: usize,
    },
    /// Dropout — a no-op at inference time, kept so layer graphs match the
    /// published architectures (and so FLOPs/params line up with Caffe's).
    Dropout {
        /// Training-time drop ratio (unused at inference).
        ratio: f32,
    },
    /// Channel-wise concatenation (joins inception branches).
    Concat,
    /// Softmax classifier output.
    Softmax,
}

impl Op {
    /// Short Caffe-style type tag, used by the model description format.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Op::Input => "input",
            Op::Conv { .. } => "conv",
            Op::Relu => "relu",
            Op::Pool {
                kind: PoolKind::Max,
                ..
            } => "maxpool",
            Op::Pool {
                kind: PoolKind::Average,
                ..
            } => "avgpool",
            Op::Lrn { .. } => "lrn",
            Op::Fc { .. } => "fc",
            Op::Dropout { .. } => "dropout",
            Op::Concat => "concat",
            Op::Softmax => "softmax",
        }
    }

    /// `true` for ops that carry learned parameters (conv and fc).
    pub fn has_params(&self) -> bool {
        matches!(self, Op::Conv { .. } | Op::Fc { .. })
    }

    /// Output shape for the given input shapes.
    ///
    /// All ops except [`Op::Concat`] take exactly one input.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::Build`] when the input shapes are incompatible
    /// with the op.
    pub fn output_shape(&self, inputs: &[&Shape]) -> Result<Shape, DnnError> {
        let one = |op: &str| -> Result<&Shape, DnnError> {
            if inputs.len() != 1 {
                return Err(DnnError::Build(format!(
                    "{op} takes exactly one input, got {}",
                    inputs.len()
                )));
            }
            Ok(inputs[0])
        };
        match self {
            Op::Input => Ok(one("input")?.clone()),
            Op::Conv {
                out_channels,
                kernel,
                stride,
                pad,
                groups,
            } => {
                let s = one("conv")?;
                if s.rank() != 3 {
                    return Err(DnnError::Build(format!(
                        "conv requires CHW input, got rank {}",
                        s.rank()
                    )));
                }
                let (c, h, w) = (s.dims()[0], s.dims()[1], s.dims()[2]);
                if *groups == 0 || c % groups != 0 || out_channels % groups != 0 {
                    return Err(DnnError::Build(format!(
                        "conv groups {groups} must divide in {c} and out {out_channels}"
                    )));
                }
                let oh = ops::window_output(h, *kernel, *stride, *pad).ok_or_else(|| {
                    DnnError::Build(format!("conv kernel {kernel} does not fit input {h}x{w}"))
                })?;
                let ow = ops::window_output(w, *kernel, *stride, *pad).ok_or_else(|| {
                    DnnError::Build(format!("conv kernel {kernel} does not fit input {h}x{w}"))
                })?;
                Ok(Shape::new(&[*out_channels, oh, ow])?)
            }
            Op::Relu | Op::Dropout { .. } | Op::Lrn { .. } => Ok(one(self.type_tag())?.clone()),
            Op::Pool {
                kernel,
                stride,
                pad,
                ..
            } => {
                let s = one("pool")?;
                if s.rank() != 3 {
                    return Err(DnnError::Build(format!(
                        "pool requires CHW input, got rank {}",
                        s.rank()
                    )));
                }
                let (c, h, w) = (s.dims()[0], s.dims()[1], s.dims()[2]);
                let oh = ops::pool_output_ceil(h, *kernel, *stride, *pad).ok_or_else(|| {
                    DnnError::Build(format!("pool kernel {kernel} does not fit input {h}x{w}"))
                })?;
                let ow = ops::pool_output_ceil(w, *kernel, *stride, *pad).ok_or_else(|| {
                    DnnError::Build(format!("pool kernel {kernel} does not fit input {h}x{w}"))
                })?;
                Ok(Shape::new(&[c, oh, ow])?)
            }
            Op::Fc { out_features } => {
                let _ = one("fc")?;
                Ok(Shape::new(&[*out_features])?)
            }
            Op::Concat => {
                if inputs.is_empty() {
                    return Err(DnnError::Build("concat needs at least one input".into()));
                }
                let (h, w) = (inputs[0].dims()[1], inputs[0].dims()[2]);
                let mut c = 0;
                for s in inputs {
                    if s.rank() != 3 || s.dims()[1] != h || s.dims()[2] != w {
                        return Err(DnnError::Build(format!(
                            "concat inputs must be CHW with equal spatial dims, got {s}"
                        )));
                    }
                    c += s.dims()[0];
                }
                Ok(Shape::new(&[c, h, w])?)
            }
            Op::Softmax => {
                let s = one("softmax")?;
                Ok(Shape::new(&[s.volume()])?)
            }
        }
    }

    /// Forward-pass FLOPs for the given input/output shapes
    /// (1 MAC = 2 FLOPs).
    pub fn flops(&self, inputs: &[&Shape], output: &Shape) -> u64 {
        match self {
            Op::Input | Op::Dropout { .. } => 0,
            Op::Conv { kernel, groups, .. } => {
                let c_in = inputs[0].dims()[0];
                let macs =
                    output.volume() as u64 * (c_in / groups) as u64 * (kernel * kernel) as u64;
                2 * macs
            }
            Op::Relu => output.volume() as u64,
            Op::Pool { kernel, .. } => (output.volume() * kernel * kernel) as u64,
            Op::Lrn { local_size, .. } => {
                // square + accumulate per window element, plus pow + div.
                (inputs[0].volume() as u64) * (2 * *local_size as u64 + 4)
            }
            Op::Fc { .. } => 2 * inputs[0].volume() as u64 * output.volume() as u64,
            Op::Concat => output.volume() as u64, // a copy
            Op::Softmax => 5 * output.volume() as u64,
        }
    }

    /// Number of learned parameters (weights + bias).
    pub fn param_count(&self, inputs: &[&Shape]) -> u64 {
        match self {
            Op::Conv {
                out_channels,
                kernel,
                groups,
                ..
            } => {
                let c_in = inputs[0].dims()[0];
                (*out_channels as u64) * (c_in / groups) as u64 * (kernel * kernel) as u64
                    + *out_channels as u64
            }
            Op::Fc { out_features } => {
                (*out_features as u64) * inputs[0].volume() as u64 + *out_features as u64
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims).unwrap()
    }

    #[test]
    fn conv_output_shape_googlenet_stem() {
        let op = Op::Conv {
            out_channels: 64,
            kernel: 7,
            stride: 2,
            pad: 3,
            groups: 1,
        };
        let input = shape(&[3, 224, 224]);
        let out = op.output_shape(&[&input]).unwrap();
        assert_eq!(out.dims(), &[64, 112, 112]);
    }

    #[test]
    fn pool_output_shape_googlenet_pool1() {
        let op = Op::Pool {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            pad: 0,
        };
        let input = shape(&[64, 112, 112]);
        let out = op.output_shape(&[&input]).unwrap();
        // The paper's Fig. 1: (56x56x64) after the first pool.
        assert_eq!(out.dims(), &[64, 56, 56]);
    }

    #[test]
    fn concat_output_sums_channels() {
        let op = Op::Concat;
        let a = shape(&[64, 28, 28]);
        let b = shape(&[128, 28, 28]);
        let c = shape(&[32, 28, 28]);
        let d = shape(&[32, 28, 28]);
        let out = op.output_shape(&[&a, &b, &c, &d]).unwrap();
        // Inception 3a output: 256x28x28.
        assert_eq!(out.dims(), &[256, 28, 28]);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let op = Op::Concat;
        let a = shape(&[64, 28, 28]);
        let b = shape(&[64, 14, 14]);
        assert!(op.output_shape(&[&a, &b]).is_err());
    }

    #[test]
    fn fc_flattens_input() {
        let op = Op::Fc { out_features: 1000 };
        let input = shape(&[1024, 1, 1]);
        assert_eq!(op.output_shape(&[&input]).unwrap().dims(), &[1000]);
    }

    #[test]
    fn conv_param_count_matches_caffe() {
        // AgeNet conv1: 96 filters, 7x7, 3 input channels.
        let op = Op::Conv {
            out_channels: 96,
            kernel: 7,
            stride: 4,
            pad: 0,
            groups: 1,
        };
        let input = shape(&[3, 227, 227]);
        assert_eq!(op.param_count(&[&input]), 96 * 3 * 49 + 96);
    }

    #[test]
    fn fc_param_count() {
        let op = Op::Fc { out_features: 512 };
        let input = shape(&[384, 7, 7]);
        assert_eq!(op.param_count(&[&input]), 512 * 384 * 49 + 512);
    }

    #[test]
    fn conv_flops_are_two_per_mac() {
        let op = Op::Conv {
            out_channels: 1,
            kernel: 3,
            stride: 1,
            pad: 0,
            groups: 1,
        };
        let input = shape(&[1, 3, 3]);
        let output = op.output_shape(&[&input]).unwrap();
        // One output element, 9 MACs.
        assert_eq!(op.flops(&[&input], &output), 18);
    }

    #[test]
    fn pool_flops_cheaper_than_conv() {
        // The paper's Fig. 8 explanation: pool layers are much cheaper than
        // conv layers on the same feature map.
        let input = shape(&[64, 112, 112]);
        let conv = Op::Conv {
            out_channels: 64,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 1,
        };
        let pool = Op::Pool {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            pad: 0,
        };
        let conv_out = conv.output_shape(&[&input]).unwrap();
        let pool_out = pool.output_shape(&[&input]).unwrap();
        assert!(conv.flops(&[&input], &conv_out) > 50 * pool.flops(&[&input], &pool_out));
    }

    #[test]
    fn dropout_is_free_and_shape_preserving() {
        let op = Op::Dropout { ratio: 0.4 };
        let input = shape(&[1024]);
        let out = op.output_shape(&[&input]).unwrap();
        assert_eq!(out, input);
        assert_eq!(op.flops(&[&input], &out), 0);
    }

    #[test]
    fn grouped_conv_divides_params() {
        // Like AlexNet-style group=2 convolutions in the Levi-Hassner nets'
        // ancestry: grouping halves the parameter count.
        let input = shape(&[96, 28, 28]);
        let g1 = Op::Conv {
            out_channels: 256,
            kernel: 5,
            stride: 1,
            pad: 2,
            groups: 1,
        };
        let g2 = Op::Conv {
            out_channels: 256,
            kernel: 5,
            stride: 1,
            pad: 2,
            groups: 2,
        };
        assert!(g1.param_count(&[&input]) > g2.param_count(&[&input]));
    }
}
