//! Fault classification and recovery policy.
//!
//! The paper's adaptive section concedes that when the edge server is not
//! ready *"it would be better for the client to execute the DNN locally"*
//! (Section IV-A). This module supplies the machinery that turns a
//! mid-offload network failure into a recoverable event instead of a lost
//! inference: errors are classified as transient or fatal, transient ones
//! are retried under a [`RetryPolicy`] (bounded attempts, virtual-time
//! exponential backoff, a hard deadline), and when the budget runs out the
//! runtime degrades to local execution via the
//! [`AdaptiveOffloader`](crate::AdaptiveOffloader). Everything is measured
//! in *virtual* time on the shared `SimClock`, so a recovery under an
//! injected [`FaultPlan`](snapedge_net::FaultPlan) is bit-for-bit
//! reproducible.

use crate::OffloadError;
use snapedge_net::{Link, NetError, Transfer};
use snapedge_trace::{EventKind, Lane, Tracer};
use snapedge_webapp::WebError;
use std::time::Duration;

/// Whether a failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The operation may succeed if repeated (link outage, corrupted
    /// payload): the network can heal.
    Transient,
    /// Retrying cannot help (configuration, protocol, app errors, a link
    /// with no bandwidth at all).
    Fatal,
    /// Retrying *on this server* cannot help, but another server — or the
    /// client itself — can still finish the work: the tenant tripped a
    /// per-server resource cap
    /// ([`WebError::ResourceExhausted`](snapedge_webapp::WebError)). The
    /// runtime must not burn retries against the exhausted server; it
    /// fails over to the next fleet candidate or degrades to local
    /// execution immediately.
    FatalForServer,
}

/// Classifies an [`OffloadError`] for the retry loop.
///
/// Link outages and corrupted payloads are [`FaultClass::Transient`]: an
/// outage window closes and a retransmit replaces a corrupt payload.
/// [`NetError::ZeroBandwidth`] is a configuration error — no amount of
/// waiting gives a zero-bandwidth link capacity — and everything
/// non-network (app, protocol, DNN, tensor) is deterministic, so both are
/// [`FaultClass::Fatal`]. A tripped per-tenant resource meter
/// ([`WebError::ResourceExhausted`](snapedge_webapp::WebError)) is
/// [`FaultClass::FatalForServer`]: repeating the same work on the same
/// server hits the same cap, but a differently-provisioned server or the
/// client can still finish it.
pub fn classify(err: &OffloadError) -> FaultClass {
    match err {
        OffloadError::Net(NetError::LinkDown) | OffloadError::Net(NetError::Corrupt(_)) => {
            FaultClass::Transient
        }
        OffloadError::Web(WebError::ResourceExhausted { .. }) => FaultClass::FatalForServer,
        _ => FaultClass::Fatal,
    }
}

/// Recovery knobs for resilient offloading.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per transfer (1 = no retries).
    pub max_attempts: u32,
    /// Total virtual-time budget for one inference, measured from the
    /// moment the user clicked. When a retry (including its backoff sleep)
    /// would overrun the deadline, the runtime falls back to local
    /// execution instead.
    pub deadline: Duration,
    /// First backoff sleep; attempt `n` sleeps `backoff_base * 2^(n-1)`,
    /// capped at [`RetryPolicy::backoff_max`].
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts, a 60 s deadline, 100 ms initial backoff doubling up
    /// to 10 s.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            deadline: Duration::from_secs(60),
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// The backoff sleep after failed attempt number `attempt` (1-based):
    /// exponential doubling from [`RetryPolicy::backoff_base`], capped at
    /// [`RetryPolicy::backoff_max`].
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(32);
        let raw = self.backoff_base.saturating_mul(1u32 << doublings.min(31));
        raw.min(self.backoff_max)
    }

    /// Total backoff sleep charged by `retries` failed attempts: the sum
    /// of [`RetryPolicy::backoff`] over attempts `1..=retries`. This is
    /// the failed-attempt penalty the predictive offloader folds into
    /// its offload-time estimate.
    pub fn cumulative_backoff(&self, retries: u32) -> Duration {
        (1..=retries).fold(Duration::ZERO, |acc, attempt| {
            acc.saturating_add(self.backoff(attempt))
        })
    }

    /// Parses a `key=value` spec, e.g. `attempts=5,deadline=30,backoff=0.2`
    /// (`deadline`/`backoff`/`backoff-max` in seconds). Unspecified keys
    /// keep their [`RetryPolicy::default`] values.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed entry.
    pub fn parse(spec: &str) -> Result<RetryPolicy, String> {
        let mut policy = RetryPolicy::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("retry entry {entry:?} is missing '='"))?;
            let secs = |v: &str| -> Result<Duration, String> {
                let s: f64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad duration {v:?} in retry spec"))?;
                if !(s.is_finite() && s >= 0.0) {
                    return Err(format!("bad duration {v:?} in retry spec"));
                }
                Ok(Duration::from_secs_f64(s))
            };
            match key.trim() {
                "attempts" => {
                    policy.max_attempts = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad attempts {value:?} in retry spec"))?;
                    if policy.max_attempts == 0 {
                        return Err("attempts must be at least 1".to_string());
                    }
                }
                "deadline" => policy.deadline = secs(value)?,
                "backoff" => policy.backoff_base = secs(value)?,
                "backoff-max" => policy.backoff_max = secs(value)?,
                other => return Err(format!("unknown retry key {other:?}")),
            }
        }
        Ok(policy)
    }
}

/// What one resilient scheduling attempt cost, beyond the transfer
/// itself. The fleet layer feeds this into its per-server health records:
/// retries penalize a server's bandwidth estimate, and `gave_up_at`
/// sequences the next candidate's provisioning after a give-up.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceOutcome {
    /// The completed transfer, or `None` when the retry budget ran out.
    pub transfer: Option<Transfer>,
    /// Number of re-attempts made (instant [`EventKind::Retry`] markers
    /// recorded).
    pub retries: u32,
    /// The virtual instant the loop stopped trying — the last failure
    /// time when the budget exhausted, [`Transfer::finish`] on success.
    pub gave_up_at: Duration,
}

/// Schedules `bytes` on `link` at virtual time `at`, retrying transient
/// failures (outage-refused attempts, corrupted payloads) under `policy`.
///
/// The shared clock is deliberately *not* advanced — the caller decides
/// whether the transfer is synchronous (snapshot migration: advance to
/// [`Transfer::finish`]) or overlapped (model pre-sending: the link's
/// occupancy carries the time). Each backoff sleep is recorded as an
/// [`EventKind::Backoff`] span and each re-attempt as an instant
/// [`EventKind::Retry`] marker, so the trace reconstructs the whole
/// recovery. The sleep before attempt `n+1` is the larger of the policy's
/// exponential backoff and the link's next fault-window edge, so the retry
/// after an outage lands exactly when the link comes back up.
///
/// Returns `Ok(None)` when the retry budget is exhausted — attempts spent,
/// the next retry would start past `anchor + deadline`, or the link is
/// statically down and can never come back — and the caller should degrade
/// gracefully. Without a policy the first transient failure is returned as
/// an error, preserving strict fail-fast behaviour.
///
/// # Errors
///
/// Fatal (non-retryable) failures are returned immediately; transient ones
/// only when no `policy` was given.
pub fn schedule_resilient(
    link: &mut Link,
    tracer: &Tracer,
    policy: Option<&RetryPolicy>,
    at: Duration,
    anchor: Duration,
    bytes: u64,
) -> Result<Option<Transfer>, OffloadError> {
    schedule_resilient_traced(link, tracer, policy, at, anchor, bytes)
        .map(|outcome| outcome.transfer)
}

/// [`schedule_resilient`] with the full [`ResilienceOutcome`]: the same
/// retry loop, but the caller also learns how many re-attempts were spent
/// and when the loop stopped. The fleet layer uses both — retries feed
/// per-server penalty observations, and `gave_up_at` anchors the handoff
/// to the next candidate.
///
/// # Errors
///
/// Same conditions as [`schedule_resilient`].
pub fn schedule_resilient_traced(
    link: &mut Link,
    tracer: &Tracer,
    policy: Option<&RetryPolicy>,
    at: Duration,
    anchor: Duration,
    bytes: u64,
) -> Result<ResilienceOutcome, OffloadError> {
    let mut at = at;
    let mut attempt: u32 = 1;
    let mut retries: u32 = 0;
    loop {
        let failure = match link.schedule(at, bytes) {
            Ok(xfer) if !xfer.corrupted => {
                return Ok(ResilienceOutcome {
                    gave_up_at: xfer.finish,
                    transfer: Some(xfer),
                    retries,
                })
            }
            Ok(xfer) => {
                // The link was occupied for the full transfer; the receiver
                // discards the payload and requests a retransmit.
                at = xfer.finish;
                OffloadError::Net(NetError::Corrupt(format!(
                    "{bytes}-byte payload corrupted in flight"
                )))
            }
            Err(e) => OffloadError::Net(e),
        };
        if classify(&failure) == FaultClass::Fatal {
            return Err(failure);
        }
        let Some(policy) = policy else {
            return Err(failure);
        };
        let gave_up = ResilienceOutcome {
            transfer: None,
            retries,
            gave_up_at: at,
        };
        if attempt >= policy.max_attempts {
            return Ok(gave_up);
        }
        let mut resume = at + policy.backoff(attempt);
        match link.next_up_after(resume) {
            // Statically failed: no outage window ever closes.
            None => return Ok(gave_up),
            Some(up) => resume = resume.max(up),
        }
        if resume > anchor + policy.deadline {
            return Ok(gave_up);
        }
        tracer.record("backoff", Lane::Network, EventKind::Backoff, at, resume);
        tracer.record("retry", Lane::Network, EventKind::Retry, resume, resume);
        at = resume;
        attempt += 1;
        retries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapedge_net::{FaultPlan, LinkConfig};

    #[test]
    fn resilient_schedule_retries_past_an_outage() {
        let mut link = Link::new(LinkConfig::mbps(8.0))
            .with_fault_plan(FaultPlan::parse("down@0..2").unwrap());
        let tracer = Tracer::new();
        let policy = RetryPolicy::default();
        let xfer = schedule_resilient(
            &mut link,
            &tracer,
            Some(&policy),
            Duration::ZERO,
            Duration::ZERO,
            1_000_000,
        )
        .unwrap()
        .expect("retry should succeed once the window closes");
        // The retry lands exactly when the link comes back up.
        assert_eq!(xfer.start, Duration::from_secs(2));
        let trace = tracer.finish();
        assert_eq!(
            trace.duration_of_kind(EventKind::Backoff, None),
            Duration::from_secs(2)
        );
    }

    #[test]
    fn statically_down_links_exhaust_immediately() {
        let mut link = Link::new(LinkConfig::mbps(8.0));
        link.set_down(true);
        let tracer = Tracer::new();
        // Fail-fast without a policy.
        assert!(matches!(
            schedule_resilient(
                &mut link,
                &tracer,
                None,
                Duration::ZERO,
                Duration::ZERO,
                1_000
            ),
            Err(OffloadError::Net(NetError::LinkDown))
        ));
        // Graceful give-up with one: there is no window edge to wait for.
        let policy = RetryPolicy::default();
        let gave_up = schedule_resilient(
            &mut link,
            &tracer,
            Some(&policy),
            Duration::ZERO,
            Duration::ZERO,
            1_000,
        )
        .unwrap();
        assert!(gave_up.is_none());
    }

    #[test]
    fn traced_variant_reports_retries_and_give_up_time() {
        // One outage → one retry that succeeds.
        let mut link = Link::new(LinkConfig::mbps(8.0))
            .with_fault_plan(FaultPlan::parse("down@0..2").unwrap());
        let tracer = Tracer::new();
        let policy = RetryPolicy::default();
        let outcome = schedule_resilient_traced(
            &mut link,
            &tracer,
            Some(&policy),
            Duration::ZERO,
            Duration::ZERO,
            1_000_000,
        )
        .unwrap();
        assert_eq!(outcome.retries, 1);
        let xfer = outcome.transfer.expect("retry should succeed");
        assert_eq!(outcome.gave_up_at, xfer.finish);

        // A statically-down link gives up at the failure instant with no
        // retries (there is no window edge to wait for).
        let mut dead = Link::new(LinkConfig::mbps(8.0));
        dead.set_down(true);
        let at = Duration::from_secs(3);
        let outcome =
            schedule_resilient_traced(&mut dead, &tracer, Some(&policy), at, at, 1_000).unwrap();
        assert!(outcome.transfer.is_none());
        assert_eq!(outcome.retries, 0);
        assert_eq!(outcome.gave_up_at, at);
    }

    #[test]
    fn network_faults_are_transient_everything_else_fatal() {
        assert_eq!(
            classify(&OffloadError::Net(NetError::LinkDown)),
            FaultClass::Transient
        );
        assert_eq!(
            classify(&OffloadError::Net(NetError::Corrupt("x".into()))),
            FaultClass::Transient
        );
        assert_eq!(
            classify(&OffloadError::Net(NetError::ZeroBandwidth)),
            FaultClass::Fatal
        );
        assert_eq!(
            classify(&OffloadError::Protocol("p".into())),
            FaultClass::Fatal
        );
        assert_eq!(
            classify(&OffloadError::Config("c".into())),
            FaultClass::Fatal
        );
        // A tripped resource meter is fatal for the server only: no
        // retry can help there, but failover or local execution can.
        assert_eq!(
            classify(&OffloadError::Web(WebError::ResourceExhausted {
                resource: "ops".into(),
                limit: 10,
                used: 11,
            })),
            FaultClass::FatalForServer
        );
        // Other app errors stay plain fatal.
        assert_eq!(
            classify(&OffloadError::Web(WebError::Runtime("boom".into()))),
            FaultClass::Fatal
        );
        // A static effect-analysis rejection is a property of the app:
        // no retry, failover or handoff can make it replayable.
        assert_eq!(
            classify(&OffloadError::Analyze(
                snapedge_analyze::AnalyzeError::Parse("bad".into())
            )),
            FaultClass::Fatal
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_millis(350),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(100));
        assert_eq!(p.backoff(2), Duration::from_millis(200));
        assert_eq!(p.backoff(3), Duration::from_millis(350), "capped");
        assert_eq!(p.backoff(30), Duration::from_millis(350));
    }

    #[test]
    fn cumulative_backoff_sums_the_schedule() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_millis(350),
            ..RetryPolicy::default()
        };
        assert_eq!(p.cumulative_backoff(0), Duration::ZERO);
        assert_eq!(p.cumulative_backoff(1), Duration::from_millis(100));
        // 100 + 200 + 350 (capped)
        assert_eq!(p.cumulative_backoff(3), Duration::from_millis(650));
    }

    #[test]
    fn parse_overrides_only_named_keys() {
        let p = RetryPolicy::parse("attempts=7, deadline=30, backoff=0.25").unwrap();
        assert_eq!(p.max_attempts, 7);
        assert_eq!(p.deadline, Duration::from_secs(30));
        assert_eq!(p.backoff_base, Duration::from_millis(250));
        assert_eq!(p.backoff_max, RetryPolicy::default().backoff_max);
        assert_eq!(RetryPolicy::parse("").unwrap(), RetryPolicy::default());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "attempts",
            "attempts=zero",
            "attempts=0",
            "deadline=-3",
            "warp=9",
        ] {
            assert!(RetryPolicy::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
