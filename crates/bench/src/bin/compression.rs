//! Extension experiment: would snapshot compression change the paper's
//! trade-offs? The feature text of partial inference is highly redundant
//! decimal ASCII; this bench runs the real LZ77+Huffman codec inside the
//! scenario (codec CPU charged to the device models) and compares.
//!
//! ```sh
//! cargo run --release -p snapedge-bench --bin compression
//! ```

use snapedge_bench::{mib, print_table};
use snapedge_core::{run_scenario, ScenarioConfig, Strategy};
use snapedge_net::LinkConfig;

fn main() -> Result<(), snapedge_core::OffloadError> {
    println!("Snapshot compression (LZ77+Huffman) on the partial-inference path\n");

    for mbps in [30.0, 5.0] {
        println!("== googlenet at {mbps:.0} Mbps");
        let mut rows = Vec::new();
        for cut in ["1st_conv", "1st_pool", "2nd_pool"] {
            let strategy = Strategy::Partial {
                cut: cut.to_string(),
            };
            let mut plain = ScenarioConfig::paper("googlenet", strategy.clone());
            plain.primary_mut().link = LinkConfig::mbps(mbps);
            let mut packed = plain.clone();
            packed.compress = true;
            let a = run_scenario(&plain)?;
            let b = run_scenario(&packed)?;
            rows.push(vec![
                cut.to_string(),
                mib(a.snapshot_up_bytes),
                mib(b.snapshot_up_bytes),
                format!("{:.2}", a.total.as_secs_f64()),
                format!("{:.2}", b.total.as_secs_f64()),
                format!(
                    "{:+.1}%",
                    (b.total.as_secs_f64() / a.total.as_secs_f64() - 1.0) * 100.0
                ),
            ]);
        }
        print_table(
            &[
                "cut",
                "plain MiB",
                "packed MiB",
                "plain s",
                "packed s",
                "time delta",
            ],
            &rows,
            &[10, 10, 11, 8, 9, 11],
        );
        println!();
    }

    println!("Reading: the codec roughly halves the feature text on the wire, so");
    println!("compression wins whenever the link is slow relative to the client's");
    println!("codec throughput — on fast links the compression CPU time eats the");
    println!("transfer saving. A DEFLATE-class codec is a cheap upgrade the paper");
    println!("leaves on the table for partial inference.");
    Ok(())
}
