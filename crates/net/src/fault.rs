//! Deterministic fault injection on virtual time.
//!
//! A [`FaultPlan`] is a schedule of windows during which a link is down,
//! degraded, or corrupting payloads. Because windows are expressed in
//! *virtual* time and consulted against the shared [`SimClock`](crate::SimClock)
//! timeline, every outage is bit-for-bit reproducible: the same plan (or
//! the same [`FaultPlan::chaos`] seed) always produces the same failures
//! at the same instants, which is what lets the chaos suite assert exact
//! recovery timings.

use crate::link::NetError;
use snapedge_rng::Rng;
use std::time::Duration;

/// What a fault window does to the link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The link is unreachable: new transfers are refused
    /// ([`NetError::LinkDown`]) and a transfer already in flight stalls
    /// until the window closes.
    Down,
    /// Serialization proceeds at `bandwidth_factor` × the configured rate
    /// (propagation latency is unchanged).
    Degraded {
        /// Multiplier in `(0, 1]` applied to the effective bandwidth.
        bandwidth_factor: f64,
    },
    /// Payloads whose serialization overlaps the window arrive corrupted:
    /// the transfer occupies the link for its full duration but the
    /// receiver must discard it and ask for a retransmit.
    Corrupt,
}

/// One scheduled fault: a half-open window `[start, end)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// When the fault begins.
    pub start: Duration,
    /// When the link recovers (exclusive).
    pub end: Duration,
    /// The failure mode inside the window.
    pub kind: FaultKind,
}

/// The link's condition at one instant, as dictated by the plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkState {
    /// No fault window covers this instant.
    Up,
    /// Inside a [`FaultKind::Down`] window.
    Down,
    /// Inside a [`FaultKind::Degraded`] window (carries the factor).
    Degraded(f64),
    /// Inside a [`FaultKind::Corrupt`] window.
    Corrupting,
}

/// A deterministic schedule of link faults. Windows are kept sorted and
/// non-overlapping; an empty plan means the link is always healthy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// A plan with no faults (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` when no fault windows are scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The scheduled windows, sorted by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Adds a window, builder style.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFaultPlan`] for empty/backwards windows,
    /// degradation factors outside `(0, 1]`, or overlap with an existing
    /// window.
    pub fn with_window(mut self, window: FaultWindow) -> Result<FaultPlan, NetError> {
        if window.end <= window.start {
            return Err(NetError::BadFaultPlan(format!(
                "window {:?}..{:?} is empty or backwards",
                window.start, window.end
            )));
        }
        if let FaultKind::Degraded { bandwidth_factor } = window.kind {
            if !(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0) {
                return Err(NetError::BadFaultPlan(format!(
                    "degradation factor {bandwidth_factor} outside (0, 1]"
                )));
            }
        }
        if self
            .windows
            .iter()
            .any(|w| window.start < w.end && w.start < window.end)
        {
            return Err(NetError::BadFaultPlan(format!(
                "window {:?}..{:?} overlaps an existing window",
                window.start, window.end
            )));
        }
        self.windows.push(window);
        self.windows.sort_by_key(|w| w.start);
        Ok(self)
    }

    /// Schedules an outage window, builder style.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FaultPlan::with_window`].
    pub fn down(self, start: Duration, end: Duration) -> Result<FaultPlan, NetError> {
        self.with_window(FaultWindow {
            start,
            end,
            kind: FaultKind::Down,
        })
    }

    /// Schedules a degraded-bandwidth window, builder style.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FaultPlan::with_window`].
    pub fn degraded(
        self,
        start: Duration,
        end: Duration,
        bandwidth_factor: f64,
    ) -> Result<FaultPlan, NetError> {
        self.with_window(FaultWindow {
            start,
            end,
            kind: FaultKind::Degraded { bandwidth_factor },
        })
    }

    /// Schedules a payload-corruption window, builder style.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FaultPlan::with_window`].
    pub fn corrupt(self, start: Duration, end: Duration) -> Result<FaultPlan, NetError> {
        self.with_window(FaultWindow {
            start,
            end,
            kind: FaultKind::Corrupt,
        })
    }

    /// The link state dictated by the plan at instant `t`.
    pub fn state_at(&self, t: Duration) -> LinkState {
        for w in &self.windows {
            if w.start <= t && t < w.end {
                return match w.kind {
                    FaultKind::Down => LinkState::Down,
                    FaultKind::Degraded { bandwidth_factor } => {
                        LinkState::Degraded(bandwidth_factor)
                    }
                    FaultKind::Corrupt => LinkState::Corrupting,
                };
            }
        }
        LinkState::Up
    }

    /// The next window edge strictly after `t` (a start or an end), or
    /// `None` when the plan has no further transitions.
    pub fn next_boundary_after(&self, t: Duration) -> Option<Duration> {
        self.windows
            .iter()
            .flat_map(|w| [w.start, w.end])
            .filter(|&edge| edge > t)
            .min()
    }

    /// The earliest instant `>= t` at which the link is not down. Degraded
    /// and corrupting windows count as reachable (transfers complete, just
    /// badly).
    pub fn next_up_after(&self, t: Duration) -> Duration {
        let mut cursor = t;
        while let LinkState::Down = self.state_at(cursor) {
            let Some(w) = self
                .windows
                .iter()
                .find(|w| w.start <= cursor && cursor < w.end)
            else {
                break;
            };
            cursor = w.end;
        }
        cursor
    }

    /// Parses a comma-separated plan spec, e.g.
    /// `down@2..5,degrade@7..9x0.25,corrupt@10..11`. Times are seconds
    /// (floating point); a `degrade` entry carries its bandwidth factor
    /// after `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadFaultPlan`] for malformed entries or windows
    /// that violate [`FaultPlan::with_window`]'s rules.
    pub fn parse(spec: &str) -> Result<FaultPlan, NetError> {
        let mut plan = FaultPlan::none();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (kind, window) = entry
                .split_once('@')
                .ok_or_else(|| NetError::BadFaultPlan(format!("entry {entry:?} is missing '@'")))?;
            let bad = |what: &str| NetError::BadFaultPlan(format!("entry {entry:?}: {what}"));
            let parse_secs = |s: &str, what: &str| -> Result<Duration, NetError> {
                let secs: f64 = s.trim().parse().map_err(|_| bad(what))?;
                if !(secs.is_finite() && secs >= 0.0) {
                    return Err(bad(what));
                }
                Ok(Duration::from_secs_f64(secs))
            };
            match kind.trim() {
                "down" | "corrupt" => {
                    let (a, b) = window.split_once("..").ok_or_else(|| bad("missing '..'"))?;
                    let start = parse_secs(a, "bad start time")?;
                    let end = parse_secs(b, "bad end time")?;
                    plan = if kind.trim() == "down" {
                        plan.down(start, end)?
                    } else {
                        plan.corrupt(start, end)?
                    };
                }
                "degrade" => {
                    let (range, factor) = window
                        .rsplit_once('x')
                        .ok_or_else(|| bad("missing 'x<factor>'"))?;
                    let (a, b) = range.split_once("..").ok_or_else(|| bad("missing '..'"))?;
                    let start = parse_secs(a, "bad start time")?;
                    let end = parse_secs(b, "bad end time")?;
                    let factor: f64 = factor.trim().parse().map_err(|_| bad("bad factor"))?;
                    plan = plan.degraded(start, end, factor)?;
                }
                other => {
                    return Err(NetError::BadFaultPlan(format!(
                        "unknown fault kind {other:?} (expected down/degrade/corrupt)"
                    )));
                }
            }
        }
        Ok(plan)
    }

    /// Formats the plan back into the spec syntax accepted by
    /// [`FaultPlan::parse`] (`down@2..5,degrade@7..9x0.25,corrupt@10..11`).
    /// Times are printed as shortest-round-tripping seconds, so
    /// `FaultPlan::parse(&plan.to_spec())` reproduces `plan` exactly; an
    /// empty plan formats as the empty string.
    pub fn to_spec(&self) -> String {
        let secs = |d: Duration| d.as_secs_f64().to_string();
        self.windows
            .iter()
            .map(|w| match w.kind {
                FaultKind::Down => format!("down@{}..{}", secs(w.start), secs(w.end)),
                FaultKind::Degraded { bandwidth_factor } => format!(
                    "degrade@{}..{}x{}",
                    secs(w.start),
                    secs(w.end),
                    bandwidth_factor
                ),
                FaultKind::Corrupt => format!("corrupt@{}..{}", secs(w.start), secs(w.end)),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// A seeded pseudo-random plan over `[0, horizon)` — the chaos-suite
    /// generator. The same seed always yields the same plan; different
    /// seeds scatter 1–3 non-overlapping windows of mixed kinds.
    pub fn chaos(seed: u64, horizon: Duration) -> FaultPlan {
        let mut rng = Rng::seed_from_u64(seed ^ 0xC0A5_7A0B_F417_5EED);
        let mut plan = FaultPlan::none();
        let h = horizon.as_secs_f64();
        let mut cursor = h * rng.gen_range_f64(0.05, 0.25);
        while cursor < h * 0.85 {
            let len = (h * rng.gen_range_f64(0.03, 0.15)).max(1e-4);
            let start = Duration::from_secs_f64(cursor);
            let end = Duration::from_secs_f64((cursor + len).min(h));
            let next = match rng.gen_range_u64(0, 3) {
                0 => plan.clone().down(start, end),
                1 => plan
                    .clone()
                    .degraded(start, end, rng.gen_range_f64(0.1, 0.75)),
                _ => plan.clone().corrupt(start, end),
            };
            if let Ok(p) = next {
                plan = p;
            }
            cursor += len + h * rng.gen_range_f64(0.15, 0.45);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> Duration {
        Duration::from_secs_f64(s)
    }

    #[test]
    fn empty_plan_is_always_up() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.state_at(secs(0.0)), LinkState::Up);
        assert_eq!(plan.state_at(secs(1e6)), LinkState::Up);
        assert_eq!(plan.next_boundary_after(Duration::ZERO), None);
        assert_eq!(plan.next_up_after(secs(3.0)), secs(3.0));
    }

    #[test]
    fn windows_dictate_state() {
        let plan = FaultPlan::none()
            .down(secs(1.0), secs(2.0))
            .unwrap()
            .degraded(secs(3.0), secs(4.0), 0.25)
            .unwrap()
            .corrupt(secs(5.0), secs(6.0))
            .unwrap();
        assert_eq!(plan.state_at(secs(0.5)), LinkState::Up);
        assert_eq!(plan.state_at(secs(1.0)), LinkState::Down);
        assert_eq!(plan.state_at(secs(1.999)), LinkState::Down);
        assert_eq!(plan.state_at(secs(2.0)), LinkState::Up, "end is exclusive");
        assert_eq!(plan.state_at(secs(3.5)), LinkState::Degraded(0.25));
        assert_eq!(plan.state_at(secs(5.5)), LinkState::Corrupting);
    }

    #[test]
    fn invalid_windows_are_rejected() {
        assert!(FaultPlan::none().down(secs(2.0), secs(1.0)).is_err());
        assert!(FaultPlan::none().down(secs(1.0), secs(1.0)).is_err());
        assert!(FaultPlan::none()
            .degraded(secs(0.0), secs(1.0), 0.0)
            .is_err());
        assert!(FaultPlan::none()
            .degraded(secs(0.0), secs(1.0), 1.5)
            .is_err());
        // Overlap.
        let plan = FaultPlan::none().down(secs(1.0), secs(3.0)).unwrap();
        assert!(plan.clone().corrupt(secs(2.0), secs(4.0)).is_err());
        // Touching windows are fine (half-open).
        assert!(plan.corrupt(secs(3.0), secs(4.0)).is_ok());
    }

    #[test]
    fn next_up_skips_consecutive_outages() {
        let plan = FaultPlan::none()
            .down(secs(1.0), secs(2.0))
            .unwrap()
            .down(secs(2.0), secs(3.0))
            .unwrap();
        assert_eq!(plan.next_up_after(secs(1.5)), secs(3.0));
        assert_eq!(plan.next_up_after(secs(0.5)), secs(0.5));
    }

    #[test]
    fn boundaries_are_strictly_after() {
        let plan = FaultPlan::none().down(secs(1.0), secs(2.0)).unwrap();
        assert_eq!(plan.next_boundary_after(Duration::ZERO), Some(secs(1.0)));
        assert_eq!(plan.next_boundary_after(secs(1.0)), Some(secs(2.0)));
        assert_eq!(plan.next_boundary_after(secs(2.0)), None);
    }

    #[test]
    fn parse_roundtrips_the_documented_spec() {
        let plan = FaultPlan::parse("down@2..5, degrade@7..9x0.25 ,corrupt@10..11").unwrap();
        assert_eq!(plan.windows().len(), 3);
        assert_eq!(plan.state_at(secs(3.0)), LinkState::Down);
        assert_eq!(plan.state_at(secs(8.0)), LinkState::Degraded(0.25));
        assert_eq!(plan.state_at(secs(10.5)), LinkState::Corrupting);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "down",
            "down@1",
            "down@5..2",
            "degrade@1..2",
            "degrade@1..2x0",
            "teleport@1..2",
            "down@x..y",
            "down@-1..2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn to_spec_roundtrips_through_parse() {
        let plan = FaultPlan::parse("down@2..5,degrade@7..9x0.25,corrupt@10..11").unwrap();
        assert_eq!(plan.to_spec(), "down@2..5,degrade@7..9x0.25,corrupt@10..11");
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
        assert_eq!(FaultPlan::none().to_spec(), "");
        // Chaos plans carry awkward fractional times; the shortest
        // round-tripping float form must still reproduce them exactly.
        for seed in 0..10u64 {
            let plan = FaultPlan::chaos(seed, Duration::from_secs(60));
            assert_eq!(
                FaultPlan::parse(&plan.to_spec()).unwrap(),
                plan,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let horizon = Duration::from_secs(60);
        for seed in [0u64, 1, 2, 42, 0xDEAD] {
            let a = FaultPlan::chaos(seed, horizon);
            let b = FaultPlan::chaos(seed, horizon);
            assert_eq!(a, b, "seed {seed}");
        }
        // Different seeds should (for these seeds) give different plans.
        assert_ne!(FaultPlan::chaos(1, horizon), FaultPlan::chaos(2, horizon));
    }

    #[test]
    fn chaos_windows_stay_inside_the_horizon() {
        let horizon = Duration::from_secs(30);
        for seed in 0..20u64 {
            let plan = FaultPlan::chaos(seed, horizon);
            for w in plan.windows() {
                assert!(w.start < w.end);
                assert!(w.end <= horizon);
            }
        }
    }
}
