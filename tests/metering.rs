//! Metering suite (ISSUE: runtime sandboxing tentpole).
//!
//! The contract under test:
//!
//! 1. **Metering off is free** — with no `MeterLimits` configured (the
//!    default) runs are bit-identical to the unmetered engine across the
//!    chaos seed matrix, and no meter events appear in the trace.
//! 2. **Generous caps only observe** — caps the workload never reaches
//!    change no result and no virtual timestamp; they only add
//!    `MeterTick` accounting events and per-round usage numbers.
//! 3. **Exhaustion is fatal-for-this-server** — a tripped cap never
//!    burns the retry budget: the session fails over to the next fleet
//!    candidate, or completes locally when every candidate is capped,
//!    and the inference result stays bit-identical either way.

use snapedge_core::prelude::*;
use std::time::Duration;

fn secs(s: f64) -> Duration {
    Duration::from_secs_f64(s)
}

fn tiny_spec(name: &str) -> ServerSpec {
    ServerSpec::new(name, edge_server_x86(), LinkConfig::wifi_30mbps())
}

fn count_kind(trace: &Trace, kind: EventKind) -> usize {
    trace.events().iter().filter(|e| e.kind == kind).count()
}

fn names_of_kind(trace: &Trace, kind: EventKind) -> Vec<String> {
    trace
        .events()
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.name.clone())
        .collect()
}

/// Caps far above anything the tiny app can reach: pure observability.
fn generous() -> MeterLimits {
    MeterLimits::default()
        .with_ops(u64::MAX / 2)
        .with_heap_cells(usize::MAX / 2)
        .with_string_len(usize::MAX / 2)
        .with_call_depth(usize::MAX / 2)
        .with_time_slice(secs(3600.0))
}

// --- 1. Metering off is free ----------------------------------------------

#[test]
fn meter_off_is_bit_identical_across_the_chaos_seed_matrix() {
    for strategy in [Strategy::OffloadAfterAck, Strategy::OffloadBeforeAck] {
        for seed in [1u64, 2, 3, 5, 8] {
            let cfg = ScenarioConfig::tiny_builder()
                .strategy(strategy.clone())
                .faults(FaultPlan::chaos(seed, secs(1.0)))
                .retry(RetryPolicy::default())
                .build();
            assert!(cfg.meter.is_none(), "metering must default off");
            let a = run_scenario(&cfg).unwrap();
            let b = run_scenario(&cfg).unwrap();
            assert_eq!(a.total, b.total, "seed {seed} is not reproducible");
            assert_eq!(a.result, b.result);
            assert_eq!(
                count_kind(&a.trace, EventKind::MeterTick),
                0,
                "meter-off runs must not emit MeterTick"
            );
            assert_eq!(count_kind(&a.trace, EventKind::MeterExhausted), 0);
        }
    }
}

#[test]
fn meter_off_session_reports_zero_usage() {
    let mut session = OffloadSession::new(SessionConfig::tiny_builder().build()).unwrap();
    for round in 1..=2 {
        let r = session.infer(round).unwrap();
        assert_eq!(r.ops_used, 0, "unmetered rounds report zero ops");
        assert_eq!(r.peak_heap, 0);
    }
    assert_eq!(count_kind(&session.trace(), EventKind::MeterTick), 0);
}

// --- 2. Generous caps only observe ----------------------------------------

#[test]
fn generous_caps_change_no_timestamp_but_are_observable() {
    let clean = run_scenario(&ScenarioConfig::tiny(Strategy::OffloadAfterAck)).unwrap();
    let metered = run_scenario(
        &ScenarioConfig::tiny_builder()
            .strategy(Strategy::OffloadAfterAck)
            .meter(generous())
            .build(),
    )
    .unwrap();
    assert_eq!(metered.result, clean.result);
    assert_eq!(
        metered.total, clean.total,
        "accounting must not cost virtual time"
    );
    assert_eq!(metered.breakdown, clean.breakdown);
    assert!(
        count_kind(&metered.trace, EventKind::MeterTick) > 0,
        "metered runs record their ticks"
    );
    assert_eq!(count_kind(&metered.trace, EventKind::MeterExhausted), 0);
}

#[test]
fn generous_caps_surface_per_round_usage_in_session_reports() {
    let mut probe = OffloadSession::new(SessionConfig::tiny_builder().build()).unwrap();
    let mut metered =
        OffloadSession::new(SessionConfig::tiny_builder().meter(generous()).build()).unwrap();
    for round in 1..=3 {
        let p = probe.infer(round).unwrap();
        let m = metered.infer(round).unwrap();
        assert_eq!(m.result, p.result);
        assert_eq!(m.total, p.total, "round {round} timing drifted");
        assert!(m.ops_used > 0, "round {round} charged no ops");
        // The benchmark apps hold their state in strings and the DOM, not
        // heap cells, so the observed peak is legitimately zero here (the
        // heap cap itself is exercised by the interpreter's unit tests).
        assert_eq!(m.peak_heap, 0);
    }
}

// --- 3. Exhaustion is fatal-for-this-server -------------------------------

#[test]
fn ops_exhaustion_fails_over_without_burning_retries() {
    let mut probe = OffloadSession::new(SessionConfig::tiny_builder().build()).unwrap();
    let probe_rounds: Vec<RoundReport> = (1..=3).map(|i| probe.infer(i).unwrap()).collect();

    // edge-a admits one op and kills the tenant during restore; edge-b is
    // unmetered. No retry policy: exhaustion must not need one.
    let mut session = OffloadSession::new(
        SessionConfig::tiny_builder()
            .servers(vec![
                tiny_spec("edge-a").with_meter(MeterLimits::default().with_ops(1)),
                tiny_spec("edge-b"),
            ])
            .build(),
    )
    .unwrap();
    let rounds: Vec<RoundReport> = (1..=3).map(|i| session.infer(i).unwrap()).collect();
    for (r, p) in rounds.iter().zip(&probe_rounds) {
        assert_eq!(r.result, p.result, "round {} result drifted", r.round);
        assert!(!r.fell_back, "round {} must not fall back", r.round);
        assert_eq!(r.server, "edge-b", "round {} served by failover", r.round);
    }
    let trace = session.trace();
    assert!(
        names_of_kind(&trace, EventKind::MeterExhausted)
            .iter()
            .any(|n| n == "meter_exhausted:ops"),
        "the tripped cap names its resource"
    );
    assert_eq!(
        names_of_kind(&trace, EventKind::Handoff),
        vec!["handoff:edge-a->edge-b".to_string()]
    );
    assert_eq!(
        count_kind(&trace, EventKind::Retry),
        0,
        "exhaustion must never burn retries"
    );
}

#[test]
fn slice_kill_mid_compute_fails_over_in_a_scenario() {
    let clean = run_scenario(&ScenarioConfig::tiny(Strategy::OffloadAfterAck)).unwrap();
    let report = run_scenario(
        &ScenarioConfig::tiny_builder()
            .strategy(Strategy::OffloadAfterAck)
            .servers(vec![
                tiny_spec("edge-a")
                    .with_meter(MeterLimits::default().with_time_slice(secs(0.000001))),
                tiny_spec("edge-b"),
            ])
            .build(),
    )
    .unwrap();
    assert_eq!(report.result, clean.result);
    assert!(!report.fell_back);
    assert_eq!(report.server.as_deref(), Some("edge-b"));
    assert!(
        names_of_kind(&report.trace, EventKind::MeterExhausted)
            .iter()
            .any(|n| n == "meter_exhausted:slice"),
        "the slice kill names its resource"
    );
}

#[test]
fn every_server_capped_falls_back_locally_with_the_same_result() {
    let mut probe = OffloadSession::new(SessionConfig::tiny_builder().build()).unwrap();
    let probe_rounds: Vec<RoundReport> = (1..=2).map(|i| probe.infer(i).unwrap()).collect();

    let tight = MeterLimits::default().with_ops(1);
    let mut session = OffloadSession::new(
        SessionConfig::tiny_builder()
            .servers(vec![
                tiny_spec("edge-a").with_meter(tight.clone()),
                tiny_spec("edge-b").with_meter(tight),
            ])
            .build(),
    )
    .unwrap();
    for (i, p) in probe_rounds.iter().enumerate() {
        let r = session.infer(i as u64 + 1).unwrap();
        assert_eq!(r.result, p.result, "local fallback computes the same bits");
        assert!(r.fell_back, "round {} must complete locally", r.round);
    }
}

#[test]
fn fleet_wide_meter_is_overridden_per_server() {
    // Fleet-wide cap is unreachable; the primary's own cap is one op.
    // The override must win on the primary only, so the round fails over
    // to the secondary, which inherits the generous fleet-wide limits.
    let report = run_scenario(
        &ScenarioConfig::tiny_builder()
            .strategy(Strategy::OffloadAfterAck)
            .meter(generous())
            .servers(vec![
                tiny_spec("edge-a").with_meter(MeterLimits::default().with_ops(1)),
                tiny_spec("edge-b"),
            ])
            .build(),
    )
    .unwrap();
    assert_eq!(report.server.as_deref(), Some("edge-b"));
    assert!(!report.fell_back);
    assert!(count_kind(&report.trace, EventKind::MeterTick) > 0);
}

// --- Fleet engine ---------------------------------------------------------

fn engine_cfg(meter: Option<MeterLimits>) -> SessionConfig {
    let mut builder = SessionConfig::tiny_builder();
    if let Some(limits) = meter {
        builder = builder.meter(limits);
    }
    builder.build()
}

fn run_engine(cfg: SessionConfig) -> FleetReport {
    Engine::sessions(cfg, 3)
        .unwrap()
        .arrival(ArrivalProcess::ClosedLoop { think: secs(0.5) })
        .duration(secs(30.0))
        .max_rounds(9)
        .run()
        .unwrap()
}

#[test]
fn engine_sojourns_are_unchanged_under_generous_metering() {
    let off = run_engine(engine_cfg(None));
    let on = run_engine(engine_cfg(Some(generous())));
    assert_eq!(on.completed, off.completed);
    assert_eq!(on.makespan, off.makespan);
    assert_eq!(on.latency.p50, off.latency.p50);
    assert_eq!(on.latency.max, off.latency.max);
    assert_eq!(off.total_ops, 0, "meter off aggregates nothing");
    assert_eq!(off.peak_heap, 0);
    assert!(on.total_ops > 0, "metered fleets aggregate charged ops");
}

#[test]
fn engine_with_a_tight_slice_is_deterministic_and_completes() {
    let cfg = engine_cfg(Some(MeterLimits::default().with_time_slice(secs(0.000001))));
    let a = run_engine(cfg.clone());
    let b = run_engine(cfg);
    // max_rounds is per client: 3 clients x 9 rounds.
    assert_eq!(a.completed, 27, "every capped round still completes");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.makespan, b.makespan, "tight-slice runs must replay");
    assert_eq!(a.latency.p50, b.latency.p50);
    assert_eq!(a.fallbacks, b.fallbacks);
    assert!(
        a.fallbacks > 0,
        "a single capped server forces local completion"
    );
}
