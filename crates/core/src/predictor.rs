//! Per-layer latency prediction, Neurosurgeon-style [16].
//!
//! Neurosurgeon fits regression models (time vs. configuration) per layer
//! type from profiling runs, then predicts partition costs at runtime
//! without executing the DNN. We reproduce that pipeline: generate noisy
//! profiling observations from a device, fit one least-squares linear
//! model per layer type (time = slope·FLOPs + intercept), and use the fit
//! to predict network execution times.

use crate::device::DeviceProfile;
use snapedge_dnn::NetworkProfile;
use std::collections::BTreeMap;
use std::time::Duration;

/// One profiling observation.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSample {
    /// Layer type tag (`"conv"`, `"fc"`, ...).
    pub op_tag: &'static str,
    /// Layer FLOPs.
    pub flops: u64,
    /// Observed execution time.
    pub observed: Duration,
}

/// A fitted `time = slope · flops + intercept` model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Seconds per FLOP.
    pub slope: f64,
    /// Fixed seconds per invocation.
    pub intercept: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
}

impl LinearModel {
    /// Least-squares fit over `(flops, seconds)` points.
    ///
    /// Returns `None` for fewer than 2 points or degenerate x-variance.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearModel> {
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
            .sum();
        let r2 = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(LinearModel {
            slope,
            intercept,
            r2,
        })
    }

    /// Predicted time for a layer of `flops`.
    pub fn predict(&self, flops: u64) -> Duration {
        Duration::from_secs_f64((self.slope * flops as f64 + self.intercept).max(0.0))
    }
}

/// Per-layer-type latency predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyPredictor {
    models: BTreeMap<&'static str, LinearModel>,
}

impl LatencyPredictor {
    /// Fits one model per layer type from profiling samples.
    pub fn fit(samples: &[LayerSample]) -> LatencyPredictor {
        let mut by_tag: BTreeMap<&'static str, Vec<(f64, f64)>> = BTreeMap::new();
        for s in samples {
            by_tag
                .entry(s.op_tag)
                .or_default()
                .push((s.flops as f64, s.observed.as_secs_f64()));
        }
        let models = by_tag
            .into_iter()
            .filter_map(|(tag, points)| LinearModel::fit(&points).map(|m| (tag, m)))
            .collect();
        LatencyPredictor { models }
    }

    /// Generates profiling observations by "running" each layer of the
    /// given network profiles on `device`, with deterministic ±3%
    /// measurement noise — the stand-in for Neurosurgeon's real profiling
    /// phase.
    pub fn profile_device(
        device: &DeviceProfile,
        profiles: &[&NetworkProfile],
        seed: u64,
    ) -> Vec<LayerSample> {
        let mut samples = Vec::new();
        let mut z = seed | 1;
        for profile in profiles {
            for layer in profile.layers() {
                if layer.flops == 0 {
                    continue;
                }
                z = z
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = 1.0 + (((z >> 33) % 600) as f64 - 300.0) / 10_000.0; // ±3%
                let t = device.layer_time(layer.op_tag, layer.flops).as_secs_f64() * noise;
                samples.push(LayerSample {
                    op_tag: layer.op_tag,
                    flops: layer.flops,
                    observed: Duration::from_secs_f64(t),
                });
            }
        }
        samples
    }

    /// The fitted model for a layer type, if any.
    pub fn model(&self, op_tag: &str) -> Option<&LinearModel> {
        self.models.get(op_tag)
    }

    /// Predicted time for one layer.
    pub fn predict_layer(&self, op_tag: &str, flops: u64) -> Option<Duration> {
        self.models.get(op_tag).map(|m| m.predict(flops))
    }

    /// Predicted time for a whole network (layers whose type was never
    /// profiled contribute zero).
    pub fn predict_network(&self, profile: &NetworkProfile) -> Duration {
        profile
            .layers()
            .iter()
            .filter(|l| l.flops > 0)
            .filter_map(|l| self.predict_layer(l.op_tag, l.flops))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::odroid_xu4;
    use snapedge_dnn::zoo;

    #[test]
    fn fit_recovers_a_linear_relationship() {
        let points: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 2.0 * i as f64 + 5.0)).collect();
        let m = LinearModel::fit(&points).unwrap();
        assert!((m.slope - 2.0).abs() < 1e-9);
        assert!((m.intercept - 5.0).abs() < 1e-9);
        assert!(m.r2 > 0.999999);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(LinearModel::fit(&[]).is_none());
        assert!(LinearModel::fit(&[(1.0, 2.0)]).is_none());
        assert!(LinearModel::fit(&[(3.0, 1.0), (3.0, 2.0)]).is_none());
    }

    #[test]
    fn trained_predictor_matches_device_model_closely() {
        // Neurosurgeon's premise: per-type regressions predict layer
        // latency well. Train on AgeNet + tiny nets, test on GoogLeNet.
        let device = odroid_xu4();
        let train = [zoo::agenet().profile(), zoo::tiny_cnn().profile()];
        let train_refs: Vec<&NetworkProfile> = train.iter().collect();
        let samples = LatencyPredictor::profile_device(&device, &train_refs, 11);
        let predictor = LatencyPredictor::fit(&samples);

        let test = zoo::googlenet().profile();
        let predicted = predictor.predict_network(&test).as_secs_f64();
        let actual = device.full_exec_time(&test).as_secs_f64();
        let rel_err = (predicted - actual).abs() / actual;
        assert!(rel_err < 0.10, "relative error {rel_err}");
    }

    #[test]
    fn conv_model_has_high_r2_despite_noise() {
        let device = odroid_xu4();
        let profiles = [zoo::googlenet().profile()];
        let refs: Vec<&NetworkProfile> = profiles.iter().collect();
        let samples = LatencyPredictor::profile_device(&device, &refs, 3);
        let predictor = LatencyPredictor::fit(&samples);
        let conv = predictor.model("conv").unwrap();
        assert!(conv.r2 > 0.95, "r2 = {}", conv.r2);
    }

    #[test]
    fn unprofiled_types_predict_none() {
        let predictor = LatencyPredictor::fit(&[]);
        assert!(predictor.predict_layer("conv", 100).is_none());
    }
}
