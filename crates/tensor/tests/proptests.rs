//! Property-style tests for tensor invariants, run as deterministic
//! seeded loops (no external `proptest` dependency — the workspace builds
//! offline). Each case draws its inputs from a [`snapedge_rng::Rng`]
//! seeded by the loop index, so failures reproduce exactly.

use snapedge_rng::Rng;
use snapedge_tensor::{ops, serialize, Shape, Tensor};

const CASES: u64 = 64;

fn small_dims(rng: &mut Rng) -> Vec<usize> {
    let n = rng.gen_range_usize(1, 4);
    (0..n).map(|_| rng.gen_range_usize(1, 6)).collect()
}

/// Uniform f32 well within text round-trip precision.
fn finite_f32(rng: &mut Rng) -> f32 {
    rng.gen_range_f32(-1.0e6, 1.0e6)
}

fn f32_vec(rng: &mut Rng, lo: usize, hi: usize) -> Vec<f32> {
    let n = rng.gen_range_usize(lo, hi);
    (0..n).map(|_| finite_f32(rng)).collect()
}

#[test]
fn shape_offset_is_bijective() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(1000 + case);
        let dims = small_dims(&mut rng);
        let shape = Shape::new(&dims).unwrap();
        let mut seen = std::collections::HashSet::new();
        // Enumerate all indices and check offsets are unique and in range.
        let mut index = vec![0usize; dims.len()];
        'outer: loop {
            let off = shape.offset(&index).unwrap();
            assert!(off < shape.volume());
            assert!(seen.insert(off), "case {case}: duplicate offset {off}");
            // Odometer increment.
            let mut axis = dims.len();
            loop {
                if axis == 0 {
                    break 'outer;
                }
                axis -= 1;
                index[axis] += 1;
                if index[axis] < dims[axis] {
                    break;
                }
                index[axis] = 0;
                if axis == 0 {
                    break 'outer;
                }
            }
        }
        assert_eq!(seen.len(), shape.volume(), "case {case}");
    }
}

#[test]
fn binary_roundtrip_preserves_tensor() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(2000 + case);
        let dims = small_dims(&mut rng);
        let seed = rng.next_u64();
        let volume: usize = dims.iter().product();
        let t = Tensor::from_fn(&dims, |i| {
            let x = (i as u64).wrapping_mul(seed | 1).wrapping_add(17);
            ((x % 100_000) as f32 / 50_000.0) - 1.0
        })
        .unwrap();
        assert_eq!(t.len(), volume);
        let back = serialize::from_binary(&serialize::to_binary(&t)).unwrap();
        assert_eq!(back, t, "case {case}");
    }
}

#[test]
fn js_text_roundtrip_preserves_values() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(3000 + case);
        let values = f32_vec(&mut rng, 1, 64);
        let t = Tensor::from_vec(&[values.len()], values.clone()).unwrap();
        let back = serialize::from_js_text(&serialize::to_js_text(&t)).unwrap();
        assert_eq!(back, values, "case {case}");
    }
}

#[test]
fn js_text_size_prediction_is_exact() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(4000 + case);
        let values = f32_vec(&mut rng, 1, 64);
        let t = Tensor::from_vec(&[values.len()], values).unwrap();
        assert_eq!(
            serialize::js_text_size(&t),
            serialize::to_js_text(&t).len(),
            "case {case}"
        );
    }
}

#[test]
fn relu_output_nonnegative_and_idempotent() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(5000 + case);
        let values = f32_vec(&mut rng, 1, 64);
        let t = Tensor::from_vec(&[values.len()], values).unwrap();
        let r = ops::relu(&t);
        assert!(r.data().iter().all(|&v| v >= 0.0), "case {case}");
        let rr = ops::relu(&r);
        assert_eq!(rr.data(), r.data(), "case {case}");
    }
}

#[test]
fn softmax_is_probability_distribution() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(6000 + case);
        let n = rng.gen_range_usize(1, 32);
        let values: Vec<f32> = (0..n).map(|_| rng.gen_range_f32(-50.0, 50.0)).collect();
        let t = Tensor::from_vec(&[values.len()], values).unwrap();
        let s = ops::softmax(&t).unwrap();
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "case {case}: sum {sum}");
        assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Softmax preserves argmax.
        assert_eq!(s.argmax(), t.argmax(), "case {case}");
    }
}

#[test]
fn maxpool_bounded_by_input_extremes() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(7000 + case);
        let c = rng.gen_range_usize(1, 4);
        let h = rng.gen_range_usize(3, 10);
        let w = rng.gen_range_usize(3, 10);
        let seed = rng.next_u32();
        let t = Tensor::from_fn(&[c, h, w], |i| {
            let x = (i as u32).wrapping_mul(seed | 1);
            ((x % 1000) as f32 / 100.0) - 5.0
        })
        .unwrap();
        let out = ops::pool2d(&t, ops::PoolKind::Max, 3, 2, 0).unwrap();
        assert!(out.max() <= t.max() + f32::EPSILON, "case {case}");
        assert!(out.min() >= t.min() - f32::EPSILON, "case {case}");
    }
}

#[test]
fn avgpool_bounded_by_input_extremes() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(8000 + case);
        let h = rng.gen_range_usize(2, 8);
        let w = rng.gen_range_usize(2, 8);
        let seed = rng.next_u32();
        let t = Tensor::from_fn(&[2, h, w], |i| {
            (((i as u32).wrapping_mul(seed | 3) % 777) as f32 / 77.7) - 5.0
        })
        .unwrap();
        let out = ops::pool2d(&t, ops::PoolKind::Average, 2, 2, 0).unwrap();
        assert!(out.max() <= t.max() + 1e-4, "case {case}");
        assert!(out.min() >= t.min() - 1e-4, "case {case}");
    }
}

#[test]
fn conv_output_shape_matches_formula() {
    let mut tried = 0u64;
    let mut case = 0u64;
    while tried < CASES {
        case += 1;
        let mut rng = Rng::seed_from_u64(9000 + case);
        let h = rng.gen_range_usize(4, 12);
        let w = rng.gen_range_usize(4, 12);
        let k = rng.gen_range_usize(1, 4);
        let stride = rng.gen_range_usize(1, 3);
        let pad = rng.gen_range_usize(0, 2);
        if h + 2 * pad < k || w + 2 * pad < k {
            continue;
        }
        tried += 1;
        let input = Tensor::filled(&[2, h, w], 1.0).unwrap();
        let weights = Tensor::filled(&[3, 2, k, k], 0.1).unwrap();
        let bias = Tensor::zeros(&[3]).unwrap();
        let out = ops::conv2d(&input, &weights, &bias, stride, pad).unwrap();
        let oh = ops::window_output(h, k, stride, pad).unwrap();
        let ow = ops::window_output(w, k, stride, pad).unwrap();
        assert_eq!(out.shape().dims(), &[3, oh, ow], "case {case}");
    }
}

#[test]
fn conv_is_linear_in_input() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(10_000 + case);
        let seed = rng.next_u32();
        let scale = rng.gen_range_f32(0.25, 4.0);
        let input = Tensor::from_fn(&[1, 5, 5], |i| {
            (((i as u32).wrapping_mul(seed | 1) % 100) as f32 / 50.0) - 1.0
        })
        .unwrap();
        let weights = Tensor::from_fn(&[2, 1, 3, 3], |i| ((i % 5) as f32 - 2.0) / 4.0).unwrap();
        let bias = Tensor::zeros(&[2]).unwrap();
        let y1 = ops::conv2d(&input, &weights, &bias, 1, 1).unwrap();
        let scaled = input.map(|v| v * scale);
        let y2 = ops::conv2d(&scaled, &weights, &bias, 1, 1).unwrap();
        let y1_scaled = y1.map(|v| v * scale);
        assert!(y2.approx_eq(&y1_scaled, 1e-2).unwrap(), "case {case}");
    }
}

#[test]
fn im2col_equals_naive_conv() {
    let mut tried = 0u64;
    let mut case = 0u64;
    while tried < CASES {
        case += 1;
        let mut rng = Rng::seed_from_u64(11_000 + case);
        let c_in = rng.gen_range_usize(1, 4);
        let c_out = rng.gen_range_usize(1, 4);
        let h = rng.gen_range_usize(3, 9);
        let w = rng.gen_range_usize(3, 9);
        let k = rng.gen_range_usize(1, 4);
        let stride = rng.gen_range_usize(1, 3);
        let pad = rng.gen_range_usize(0, 2);
        let seed = rng.next_u32();
        if h + 2 * pad < k || w + 2 * pad < k {
            continue;
        }
        tried += 1;
        let input = Tensor::from_fn(&[c_in, h, w], |i| {
            (((i as u32).wrapping_mul(seed | 1) >> 8) % 200) as f32 / 100.0 - 1.0
        })
        .unwrap();
        let weights = Tensor::from_fn(&[c_out, c_in, k, k], |i| {
            (((i as u32).wrapping_mul(seed | 7) >> 9) % 100) as f32 / 50.0 - 1.0
        })
        .unwrap();
        let bias = Tensor::from_fn(&[c_out], |i| i as f32 / 10.0).unwrap();
        let naive = ops::conv2d(&input, &weights, &bias, stride, pad).unwrap();
        let fast = ops::conv2d_im2col(&input, &weights, &bias, stride, pad, 1).unwrap();
        assert!(naive.approx_eq(&fast, 1e-3).unwrap(), "case {case}");
    }
}

#[test]
fn concat_volume_is_sum() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(12_000 + case);
        let c1 = rng.gen_range_usize(1, 4);
        let c2 = rng.gen_range_usize(1, 4);
        let a = Tensor::filled(&[c1, 3, 3], 1.0).unwrap();
        let b = Tensor::filled(&[c2, 3, 3], 2.0).unwrap();
        let out = ops::concat_channels(&[&a, &b]).unwrap();
        assert_eq!(out.len(), a.len() + b.len(), "case {case}");
    }
}
