//! Passive bandwidth estimation from observed transfers.
//!
//! The paper's partitioner consumes "the runtime network status"; a real
//! client learns that status by watching its own transfers. This EWMA
//! estimator is the usual lightweight approach: every completed transfer
//! contributes a throughput sample, recent samples dominate.

use crate::{LinkConfig, Transfer};
use std::time::Duration;

/// Fraction of the current estimate that survives one
/// [`BandwidthEstimator::penalize`] call.
const PENALTY_FACTOR: f64 = 0.5;

/// Penalties never decay the estimate below this floor (one byte per
/// second). Keeps a penalized-to-death estimator yielding finite,
/// well-ordered transfer-time predictions instead of drifting into
/// denormals.
const PENALTY_FLOOR_BPS: f64 = 8.0;

/// Exponentially-weighted moving-average bandwidth estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthEstimator {
    alpha: f64,
    estimate_bps: Option<f64>,
    samples: usize,
    penalties: usize,
}

impl Default for BandwidthEstimator {
    fn default() -> Self {
        BandwidthEstimator::new(0.3)
    }
}

impl BandwidthEstimator {
    /// Creates an estimator with smoothing factor `alpha` in `(0, 1]`
    /// (higher = more reactive). Values are clamped into range.
    pub fn new(alpha: f64) -> BandwidthEstimator {
        BandwidthEstimator {
            alpha: alpha.clamp(0.01, 1.0),
            estimate_bps: None,
            samples: 0,
            penalties: 0,
        }
    }

    /// Forgets every sample and penalty, returning the estimator to its
    /// freshly-constructed state (same `alpha`). Called on a server
    /// handoff so estimates never mix throughput observed against
    /// different servers.
    pub fn reset(&mut self) {
        self.estimate_bps = None;
        self.samples = 0;
        self.penalties = 0;
    }

    /// Records a negative observation — a refused or repeatedly-retried
    /// transfer carries real information about the path even though no
    /// bytes got through. The current estimate is halved (EWMA-style
    /// decay toward zero), steering the fleet's selection metric away
    /// from the faulty server. A no-op before the first throughput
    /// sample: with no estimate there is nothing to decay, and inventing
    /// one would poison the first real observation. Decay stops at a
    /// small floor ([`PENALTY_FLOOR_BPS`]) so an arbitrarily-penalized
    /// estimator still yields finite, monotone transfer-time predictions.
    pub fn penalize(&mut self) {
        if let Some(prev) = self.estimate_bps {
            self.estimate_bps = Some(if prev <= PENALTY_FLOOR_BPS {
                prev
            } else {
                (prev * PENALTY_FACTOR).max(PENALTY_FLOOR_BPS)
            });
            self.penalties += 1;
        }
    }

    /// Number of penalty observations absorbed since the last reset.
    pub fn penalties(&self) -> usize {
        self.penalties
    }

    /// Feeds one completed transfer (payload bytes over elapsed time).
    /// Zero-duration or zero-byte transfers are ignored — they carry no
    /// throughput information.
    pub fn observe(&mut self, bytes: u64, elapsed: Duration) {
        if bytes == 0 || elapsed.is_zero() {
            return;
        }
        let sample = bytes as f64 * 8.0 / elapsed.as_secs_f64();
        self.estimate_bps = Some(match self.estimate_bps {
            Some(prev) => prev + self.alpha * (sample - prev),
            None => sample,
        });
        self.samples += 1;
    }

    /// Convenience: observes a [`Transfer`] record.
    pub fn observe_transfer(&mut self, transfer: &Transfer) {
        self.observe(transfer.bytes, transfer.elapsed());
    }

    /// Current estimate in bits/second, if any transfer has been seen.
    pub fn estimate_bps(&self) -> Option<f64> {
        self.estimate_bps
    }

    /// Number of samples absorbed.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Builds a [`LinkConfig`] from the estimate for feeding a planner
    /// (e.g. the adaptive offloader). Returns `None` before any sample.
    ///
    /// Only the bandwidth is estimated; latency, loss and per-transfer
    /// overhead are inherited from `template` — the configured link the
    /// observations were made against. (Fabricating `loss: 0` /
    /// `overhead_bytes: 0` here made every estimator-fed plan optimistic
    /// on lossy or overhead-heavy paths.)
    pub fn as_link_config(&self, template: &LinkConfig) -> Option<LinkConfig> {
        self.estimate_bps.map(|bps| LinkConfig {
            bandwidth_bps: bps,
            ..template.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_sets_the_estimate() {
        let mut e = BandwidthEstimator::default();
        assert_eq!(e.estimate_bps(), None);
        e.observe(1_000_000, Duration::from_secs(1));
        assert_eq!(e.estimate_bps(), Some(8.0e6));
    }

    #[test]
    fn converges_toward_a_stable_rate() {
        let mut e = BandwidthEstimator::new(0.3);
        for _ in 0..50 {
            e.observe(3_750_000, Duration::from_secs(1)); // 30 Mbps
        }
        let est = e.estimate_bps().unwrap();
        assert!((est - 30.0e6).abs() / 30.0e6 < 0.01, "est {est}");
    }

    #[test]
    fn reacts_to_degradation() {
        let mut e = BandwidthEstimator::new(0.5);
        for _ in 0..10 {
            e.observe(3_750_000, Duration::from_secs(1)); // 30 Mbps
        }
        for _ in 0..10 {
            e.observe(125_000, Duration::from_secs(1)); // 1 Mbps
        }
        let est = e.estimate_bps().unwrap();
        assert!(est < 2.0e6, "should track the collapse, est {est}");
    }

    #[test]
    fn ignores_information_free_samples() {
        let mut e = BandwidthEstimator::default();
        e.observe(0, Duration::from_secs(1));
        e.observe(100, Duration::ZERO);
        assert_eq!(e.samples(), 0);
        assert_eq!(e.estimate_bps(), None);
    }

    #[test]
    fn link_config_roundtrip() {
        // A lossy, overhead-heavy template: the estimate replaces only
        // the bandwidth, everything else is inherited verbatim.
        let template = LinkConfig {
            bandwidth_bps: 100.0e6,
            latency: Duration::from_millis(5),
            overhead_bytes: 512,
            loss: 0.2,
        };
        let mut e = BandwidthEstimator::default();
        assert!(e.as_link_config(&template).is_none());
        e.observe(3_750_000, Duration::from_secs(1));
        let cfg = e.as_link_config(&template).unwrap();
        assert!((cfg.bandwidth_bps - 30.0e6).abs() < 1.0);
        assert_eq!(cfg.latency, template.latency);
        assert_eq!(cfg.overhead_bytes, template.overhead_bytes);
        assert_eq!(cfg.loss, template.loss);
        // The config is usable for transfer-time prediction, and the
        // inherited loss makes it slower than a fabricated lossless one.
        let lossy = cfg.transfer_time(3_750_000).unwrap();
        assert!(lossy.as_secs_f64() > 0.9);
        let lossless = LinkConfig { loss: 0.0, ..cfg }
            .transfer_time(3_750_000)
            .unwrap();
        assert!(lossy > lossless, "loss must survive the round-trip");
    }

    #[test]
    fn penalties_decay_to_a_floor_not_to_zero() {
        let mut e = BandwidthEstimator::default();
        e.observe(3_750_000, Duration::from_secs(1)); // 30 Mbps
        for _ in 0..500 {
            e.penalize();
        }
        let est = e.estimate_bps().unwrap();
        assert_eq!(est, PENALTY_FLOOR_BPS);
        assert_eq!(e.penalties(), 500);
        // The floored estimate still yields a finite link config.
        let cfg = e.as_link_config(&LinkConfig::wifi_30mbps()).unwrap();
        assert!(cfg.transfer_time(1024).is_ok());
    }

    #[test]
    fn reset_forgets_everything() {
        let mut e = BandwidthEstimator::new(0.3);
        for _ in 0..5 {
            e.observe(3_750_000, Duration::from_secs(1));
        }
        e.penalize();
        assert!(e.estimate_bps().is_some());
        e.reset();
        assert_eq!(e.estimate_bps(), None);
        assert_eq!(e.samples(), 0);
        assert_eq!(e.penalties(), 0);
        // Still usable after the reset — and the first post-reset sample
        // sets the estimate outright, untainted by pre-reset history.
        e.observe(1_000_000, Duration::from_secs(1));
        assert_eq!(e.estimate_bps(), Some(8.0e6));
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn penalties_halve_the_estimate_and_are_counted() {
        let mut e = BandwidthEstimator::new(0.5);
        // Before any sample a penalty is a no-op.
        e.penalize();
        assert_eq!(e.estimate_bps(), None);
        assert_eq!(e.penalties(), 0);
        e.observe(1_000_000, Duration::from_secs(1)); // 8 Mbps
        e.penalize();
        assert_eq!(e.estimate_bps(), Some(4.0e6));
        e.penalize();
        assert_eq!(e.estimate_bps(), Some(2.0e6));
        assert_eq!(e.penalties(), 2);
        // Penalties decay the estimate; they are not throughput samples.
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn alpha_is_clamped() {
        let e = BandwidthEstimator::new(42.0);
        let f = BandwidthEstimator::new(-3.0);
        // Both still function.
        let mut e = e;
        let mut f = f;
        e.observe(1000, Duration::from_millis(10));
        f.observe(1000, Duration::from_millis(10));
        assert!(e.estimate_bps().is_some());
        assert!(f.estimate_bps().is_some());
    }
}
