use crate::{Shape, TensorError};
use std::fmt;

/// An owned, row-major dense `f32` tensor.
///
/// This is the single numeric container used throughout the workspace: DNN
/// layer parameters, feature maps travelling between client and edge server,
/// and the decoded form of snapshot-embedded typed arrays.
///
/// # Example
///
/// ```
/// use snapedge_tensor::Tensor;
///
/// # fn main() -> Result<(), snapedge_tensor::TensorError> {
/// let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// assert_eq!(t.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the shape volume, or [`TensorError::EmptyShape`] for an invalid shape.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor of zeros.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn zeros(dims: &[usize]) -> Result<Tensor, TensorError> {
        Tensor::filled(dims, 0.0)
    }

    /// Creates a tensor where every element is `value`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn filled(dims: &[usize], value: f32) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims)?;
        let data = vec![value; shape.volume()];
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor whose elements are produced by `f(linear_index)`.
    ///
    /// Used by the synthetic executor to generate shape-faithful pseudo
    /// activations without running real arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims)?;
        let data = (0..shape.volume()).map(&mut f).collect();
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements. Always `false` for valid
    /// tensors (shapes cannot be empty), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Element assignment by multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims)?;
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data,
        })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Largest element, or `f32::NEG_INFINITY` for (impossible) empty data.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element, or `f32::INFINITY` for (impossible) empty data.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the largest element (ties resolve to the first maximum).
    ///
    /// This is how the example apps turn a softmax output into a label.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Mean squared difference against another tensor — used by the privacy
    /// experiment to score reconstruction attacks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        let sum: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        Ok(sum / self.data.len() as f32)
    }

    /// `true` when every element differs from `other` by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= tol))
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [{} elems]", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 3]).is_err());
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]).unwrap();
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn argmax_first_of_ties() {
        let t = Tensor::from_vec(&[4], vec![1.0, 3.0, 3.0, 2.0]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let t = Tensor::from_fn(&[5], |i| i as f32).unwrap();
        assert_eq!(t.mse(&t).unwrap(), 0.0);
    }

    #[test]
    fn mse_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2]).unwrap();
        let b = Tensor::zeros(&[3]).unwrap();
        assert!(a.mse(&b).is_err());
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_vec(&[3], vec![-1.0, 0.0, 2.0]).unwrap();
        let r = t.map(|x| x.max(0.0));
        assert_eq!(r.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn min_max_sum() {
        let t = Tensor::from_vec(&[4], vec![-2.0, 5.0, 0.5, 1.5]).unwrap();
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.sum(), 5.0);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![1.005, 1.995]).unwrap();
        assert!(a.approx_eq(&b, 0.01).unwrap());
        assert!(!a.approx_eq(&b, 0.001).unwrap());
    }
}
