//! Micro-benchmark — interpreter identifier resolution on the hot path.
//!
//! Every `Ident` carries a pre-interned `Symbol`; locals resolve to
//! frame slots cached per function definition, and globals/hosts probe
//! symbol-keyed maps instead of comparing key strings per access. This
//! bench runs three tight loops — local-heavy, global-heavy, and
//! host-call-heavy — and reports steps per microsecond. Report-only:
//! numbers are host-dependent and nothing gates on them; track them
//! across commits to see lookup-path regressions.
//!
//! ```sh
//! cargo run --release -p snapedge-bench --bin lookup_hot
//! ```

use snapedge_bench::print_table;
use snapedge_webapp::{Browser, WebError};
use std::time::Instant;

/// Loop iterations per workload (steps per run is a few multiples).
const N: u32 = 20_000;

/// Locals only: every read/write resolves through frame slots.
fn local_app(n: u32) -> String {
    format!(
        "<html><body></body><script>\n\
         function work() {{\n\
           var acc = 0;\n\
           var step = 1;\n\
           var i = 0;\n\
           while (i < {n}) {{ acc = acc + step; i = i + 1; }}\n\
           return acc;\n\
         }}\n\
         var out = work();\n\
         </script></html>"
    )
}

/// Globals only: every read/write goes through the symbol-keyed global map.
fn global_app(n: u32) -> String {
    format!(
        "<html><body></body><script>\n\
         var acc = 0;\n\
         var step = 1;\n\
         var i = 0;\n\
         function work() {{\n\
           while (i < {n}) {{ acc = acc + step; i = i + 1; }}\n\
         }}\n\
         work();\n\
         </script></html>"
    )
}

/// Host dispatch: a `Math` call per iteration on top of the loop bookkeeping.
fn host_app(n: u32) -> String {
    format!(
        "<html><body></body><script>\n\
         function work() {{\n\
           var acc = 0;\n\
           var i = 0;\n\
           while (i < {n}) {{ acc = acc + Math.max(i, 1); i = i + 1; }}\n\
           return acc;\n\
         }}\n\
         var out = work();\n\
         </script></html>"
    )
}

fn time_app(html: &str) -> Result<(f64, u64), WebError> {
    // Warm: parse + first execution populates the thread-local interner.
    let mut warm = Browser::new();
    warm.load_html(html)?;

    // The apps run entirely at load time (top-level `work()` call), so
    // `load_html` is the measured region and `steps()` its step count.
    let start = Instant::now();
    let mut browser = Browser::new();
    browser.load_html(html)?;
    let micros = start.elapsed().as_secs_f64() * 1e6;
    Ok((micros, browser.steps()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Interpreter identifier lookup micro (report-only)\n");
    let workloads: [(&str, String); 3] = [
        ("locals (slots)", local_app(N)),
        ("globals (symbols)", global_app(N)),
        ("host calls (Math)", host_app(N)),
    ];
    let mut rows = Vec::new();
    for (name, html) in &workloads {
        let (micros, steps) = time_app(html)?;
        rows.push(vec![
            (*name).to_string(),
            steps.to_string(),
            format!("{micros:.0}"),
            format!("{:.2}", steps as f64 / micros),
        ]);
    }
    print_table(
        &["workload", "steps", "time (us)", "steps/us"],
        &rows,
        &[18, 9, 10, 9],
    );
    println!("\ntrack steps/us across commits to catch lookup-path regressions");
    Ok(())
}
