//! Tokenizer for MiniJS — the JavaScript subset the browser runtime
//! executes and the snapshot generator emits.

use crate::intern::Ident;
use crate::WebError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, pre-interned — one interner hit per token,
    /// after which every comparison is a symbol compare.
    Ident(Ident),
    /// Numeric literal (always f64, like JS).
    Number(f64),
    /// String literal (already unescaped).
    Str(String),
    /// Punctuation or operator, e.g. `"=="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

const PUNCTS2: &[&str] = &["==", "!=", "<=", ">=", "&&", "||", "+=", "-="];
const PUNCTS1: &[&str] = &[
    "(", ")", "{", "}", "[", "]", ",", ";", ":", ".", "=", "<", ">", "+", "-", "*", "/", "%", "!",
];

/// Tokenizes MiniJS source.
///
/// # Errors
///
/// Returns [`WebError::Lex`] for unterminated strings/comments or
/// unrecognized characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, WebError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(WebError::Lex {
                            line: start_line,
                            message: "unterminated block comment".to_string(),
                        });
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Strings.
        if c == '"' || c == '\'' {
            let quote = c;
            let start_line = line;
            i += 1;
            // Per-literal buffer; ownership moves into the emitted token.
            // lint: allow(collect-in-loop)
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(WebError::Lex {
                        line: start_line,
                        message: "unterminated string".to_string(),
                    });
                }
                let ch = bytes[i];
                if ch == quote {
                    i += 1;
                    break;
                }
                if ch == '\n' {
                    return Err(WebError::Lex {
                        line: start_line,
                        message: "newline in string literal".to_string(),
                    });
                }
                if ch == '\\' {
                    i += 1;
                    if i >= bytes.len() {
                        return Err(WebError::Lex {
                            line: start_line,
                            message: "unterminated escape".to_string(),
                        });
                    }
                    let esc = bytes[i];
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '0' => '\0',
                        '\\' => '\\',
                        '"' => '"',
                        '\'' => '\'',
                        other => {
                            return Err(WebError::Lex {
                                line,
                                message: format!("unknown escape \\{other}"),
                            })
                        }
                    });
                    i += 1;
                    continue;
                }
                s.push(ch);
                i += 1;
            }
            out.push(Spanned {
                token: Token::Str(s),
                line: start_line,
            });
            continue;
        }
        // Numbers (decimal, optional fraction/exponent; leading digit
        // required — `-x` lexes as unary minus).
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len()
                && bytes[i] == '.'
                && i + 1 < bytes.len()
                && bytes[i + 1].is_ascii_digit()
            {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == '+' || bytes[j] == '-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text: String = bytes[start..i].iter().collect();
            let value = text.parse::<f64>().map_err(|e| WebError::Lex {
                line,
                message: format!("bad number {text:?}: {e}"),
            })?;
            out.push(Spanned {
                token: Token::Number(value),
                line,
            });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
            {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            out.push(Spanned {
                token: Token::Ident(Ident::new(&text)),
                line,
            });
            continue;
        }
        // Two-char punctuation first.
        if i + 1 < bytes.len() {
            let two: String = [bytes[i], bytes[i + 1]].iter().collect();
            if let Some(p) = PUNCTS2.iter().find(|&&p| p == two) {
                out.push(Spanned {
                    token: Token::Punct(p),
                    line,
                });
                i += 2;
                continue;
            }
        }
        let one = c.to_string();
        if let Some(p) = PUNCTS1.iter().find(|&&p| p == one) {
            out.push(Spanned {
                token: Token::Punct(p),
                line,
            });
            i += 1;
            continue;
        }
        return Err(WebError::Lex {
            line,
            message: format!("unexpected character {c:?}"),
        });
    }
    out.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_var_declaration() {
        assert_eq!(
            tokens("var x = 1.5;"),
            vec![
                Token::Ident("var".into()),
                Token::Ident("x".into()),
                Token::Punct("="),
                Token::Number(1.5),
                Token::Punct(";"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            tokens(r#"'a\'b' "c\n\"d""#),
            vec![
                Token::Str("a'b".into()),
                Token::Str("c\n\"d".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers_with_exponents() {
        assert_eq!(
            tokens("3 3.25 1e3 2.5e-2"),
            vec![
                Token::Number(3.0),
                Token::Number(3.25),
                Token::Number(1000.0),
                Token::Number(0.025),
                Token::Eof
            ]
        );
    }

    #[test]
    fn member_access_vs_fraction() {
        // `a.b` must not lex `.b` as a number.
        assert_eq!(
            tokens("a.b"),
            vec![
                Token::Ident("a".into()),
                Token::Punct("."),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            tokens("1 // line\n/* block\n2 */ 3"),
            vec![Token::Number(1.0), Token::Number(3.0), Token::Eof]
        );
    }

    #[test]
    fn two_char_ops_win() {
        assert_eq!(
            tokens("a==b<=c&&d"),
            vec![
                Token::Ident("a".into()),
                Token::Punct("=="),
                Token::Ident("b".into()),
                Token::Punct("<="),
                Token::Ident("c".into()),
                Token::Punct("&&"),
                Token::Ident("d".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn reports_line_numbers() {
        let err = lex("ok\n  @").unwrap_err();
        assert!(matches!(err, WebError::Lex { line: 2, .. }));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("'abc").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
