//! Extension experiment: client battery cost per inference under each
//! strategy — the metric MAUI-lineage offloading systems optimize, applied
//! to the paper's workloads.
//!
//! ```sh
//! cargo run --release -p snapedge-bench --bin energy
//! ```

use snapedge_bench::{fig6_strategies, print_table, run_paper, PAPER_MODELS};
use snapedge_core::{client_energy, odroid_xu4_energy};

fn main() -> Result<(), snapedge_core::OffloadError> {
    println!("Client energy per inference (Odroid-XU4 power model, joules)\n");
    let profile = odroid_xu4_energy();

    let mut rows = Vec::new();
    for (label, strategy) in fig6_strategies() {
        if label == "Server" {
            continue; // no client in the loop
        }
        let mut row = vec![label.to_string()];
        for model in PAPER_MODELS {
            let report = run_paper(model, strategy.clone())?;
            let energy = client_energy(&profile, &report);
            row.push(format!("{:.1}", energy.total_joules()));
        }
        rows.push(row);
    }
    print_table(
        &["strategy", "googlenet", "agenet", "gendernet"],
        &rows,
        &[28, 10, 10, 10],
    );

    // Detail for one configuration.
    let report = run_paper("googlenet", snapedge_core::Strategy::OffloadAfterAck)?;
    let e = client_energy(&profile, &report);
    println!(
        "\ngooglenet after-ACK detail: compute {:.2} J + radio {:.2} J + idle {:.2} J = {:.2} J",
        e.compute_joules,
        e.radio_joules,
        e.idle_joules,
        e.total_joules()
    );
    println!("\nReading: with the model pre-sent, offloading converts minutes of");
    println!("6 W CPU burn into seconds of 1.5 W idle — an order of magnitude of");
    println!("battery per inference, the classic cyber-foraging win. Partial");
    println!("inference gives some of it back as the privacy tax.");
    Ok(())
}
