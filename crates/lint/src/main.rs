//! `snapedge-lint` — a determinism lint over the workspace's own sources.
//!
//! The simulator's claim to reproducibility rests on three invariants that
//! `rustc` cannot check for us:
//!
//! 1. **No wall-clock time.** All time flows through the virtual
//!    [`SimClock`]; a stray `Instant::now()` makes a run depend on the host
//!    machine. Only the micro-benchmarks (`crates/bench/`) legitimately
//!    measure real time.
//! 2. **No hash-order iteration near serialized output.** Snapshot and
//!    delta scripts are byte-compared across endpoints, so any `HashMap`/
//!    `HashSet` in the files that produce them risks nondeterministic
//!    output ordering. Visited-sets that are never iterated may opt out
//!    with a `lint: allow(hash-iter)` comment on the same or preceding
//!    line.
//! 3. **No panicking calls on the offload hot path.** Capture, transfer,
//!    restore and retry must surface typed errors — a panic mid-offload
//!    deprives the resilience layer of its chance to recover.
//! 4. **No collection allocation inside hot-path loops.** A `Vec`/`String`
//!    born inside a `while`/`for` body reallocates every iteration of
//!    capture or interpretation; hoist it (or annotate
//!    `lint: allow(collect-in-loop)` when per-iteration ownership is the
//!    point).
//! 5. **No string-keyed maps on the hot path.** Identifier lookups go
//!    through interned [`Symbol`]s (`crates/webapp/src/intern.rs`); a
//!    `BTreeMap<String, _>`/`HashMap<String, _>` in hot code re-compares
//!    key bytes on every probe and usually marks a spot the interning
//!    refactor missed. Maps whose keys are genuinely arbitrary app data
//!    (object properties, DOM attributes) opt out with
//!    `lint: allow(string-keyed-map)`.
//!
//! The hot path is *derived*, not hand-listed: every `.rs` under the
//! core/net/webapp/analyze crates' `src/` is hot unless it appears in the
//! explicit [`HOT_PATH_OPT_OUT`] list, so newly added files (like the
//! effect pass) are covered by default instead of silently missed.
//!
//! Test modules (`#[cfg(test)]` regions, tracked by brace depth) are
//! exempt from rules 2–4; rule 1 applies everywhere outside the bench
//! crate, because determinism matters in tests too. Exit status is
//! non-zero when any finding is reported, so CI can gate on it.
//!
//! [`SimClock`]: ../snapedge_net/struct.SimClock.html

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Patterns that read the host's real clock.
const WALL_CLOCK: [&str; 2] = ["SystemTime::now", "Instant::now"];

/// Panicking calls forbidden on the hot path.
const PANICKING: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Suppression comment for the hash-iter rule.
const ALLOW_HASH_ITER: &str = "lint: allow(hash-iter)";

/// Suppression comment for the collect-in-loop rule.
const ALLOW_COLLECT_IN_LOOP: &str = "lint: allow(collect-in-loop)";

/// Suppression comment for the string-keyed-map rule.
const ALLOW_STRING_KEYED_MAP: &str = "lint: allow(string-keyed-map)";

/// String-keyed map types that belong on the interned-`Symbol` path when
/// they appear in hot code.
const STRING_KEYED_MAPS: [&str; 2] = ["BTreeMap<String,", "HashMap<String,"];

/// Collection allocations that reallocate per iteration when they appear
/// inside a loop body.
const COLLECT_ALLOCS: [&str; 5] = [
    "Vec::new()",
    "String::new()",
    "vec![",
    "Vec::with_capacity",
    "String::with_capacity",
];

/// Files (or directory prefixes ending in `/`) whose output is serialized
/// and byte-compared, making hash iteration order observable.
const HASH_SENSITIVE: [&str; 5] = [
    "crates/webapp/src/snapshot.rs",
    "crates/webapp/src/delta.rs",
    "crates/webapp/src/value.rs",
    "crates/webapp/src/dom.rs",
    "crates/trace/src/",
];

/// Crates whose `src/` trees sit on (or feed) the capture → transfer →
/// restore → retry path. Every `.rs` under these prefixes is hot-path by
/// default, so new files get coverage without editing this lint.
const HOT_PATH_CRATES: [&str; 4] = [
    "crates/core/src/",
    "crates/net/src/",
    "crates/webapp/src/",
    "crates/analyze/src/",
];

/// Explicit opt-outs from the derived hot-path set: offline analysis,
/// report shaping, and config plumbing that never runs mid-offload. Keep
/// each entry justified — a new file under a hot crate is hot by default.
const HOT_PATH_OPT_OUT: [&str; 7] = [
    // Runs before any session exists (offline partition search / attack
    // evaluation), never between capture and restore.
    "crates/core/src/partition.rs",
    "crates/core/src/privacy.rs",
    "crates/core/src/contention.rs",
    "crates/core/src/energy.rs",
    // Post-hoc report rendering over a finished trace.
    "crates/core/src/timeline.rs",
    // App-source literals assembled once at config time.
    "crates/core/src/apps.rs",
    // Config assembly; its documented panics are builder-misuse
    // assertions that fire before any offload starts.
    "crates/core/src/config.rs",
];

/// `true` when `rel` is on the derived hot path.
fn is_hot_path(rel: &str) -> bool {
    HOT_PATH_CRATES.iter().any(|p| rel.starts_with(p)) && !HOT_PATH_OPT_OUT.contains(&rel)
}

/// One lint hit, reported as `file:line: [rule] message`.
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

fn main() -> ExitCode {
    let root = match workspace_root() {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("snapedge-lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let files = rust_sources(&root);
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(path) {
            Ok(content) => findings.extend(lint_file(&rel, &content)),
            Err(e) => {
                eprintln!("snapedge-lint: reading {rel}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if findings.is_empty() {
        println!(
            "snapedge-lint: {} files scanned, no determinism findings",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!(
            "snapedge-lint: {} finding(s) in {} files scanned",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
fn workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
    }
    Err(format!(
        "no workspace Cargo.toml found above {}",
        start.display()
    ))
}

/// Collects every `.rs` file under `crates/`, `tests/` and `examples/`,
/// in sorted (deterministic) order.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Marks the lines belonging to `#[cfg(test)]` items by tracking brace
/// depth from the attribute to the close of the item it gates.
fn test_region_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            mask[j] = true;
            for ch in lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// Marks lines inside `while`/`for` bodies by tracking brace depth from
/// each loop keyword to the close of its body. Nested loops extend the
/// region; the header line itself is included (a `while` condition runs
/// per iteration too).
fn loop_region_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0i64;
    // Brace depths at which an enclosing loop body opened.
    let mut loops: Vec<i64> = Vec::new();
    let mut pending_header = false;
    for (idx, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            mask[idx] = !loops.is_empty();
            continue;
        }
        let header = trimmed.starts_with("for ")
            || trimmed.starts_with("while ")
            || trimmed.contains(" for ")
            || trimmed.contains(" while ");
        if header {
            pending_header = true;
        }
        mask[idx] = header || !loops.is_empty();
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_header {
                        loops.push(depth);
                        pending_header = false;
                    }
                }
                '}' => {
                    if loops.last() == Some(&depth) {
                        loops.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        mask[idx] = mask[idx] || !loops.is_empty();
    }
    mask
}

/// Applies all four rules to one file; `rel` is the workspace-relative
/// path with forward slashes.
fn lint_file(rel: &str, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let in_test = test_region_mask(&lines);
    let in_loop = loop_region_mask(&lines);
    // Benches measure real time by design; the lint's own sources name
    // the patterns they search for.
    let clock_exempt = rel.starts_with("crates/bench/") || rel.starts_with("crates/lint/");
    let hash_sensitive = HASH_SENSITIVE
        .iter()
        .any(|p| rel == *p || (p.ends_with('/') && rel.starts_with(p)));
    let hot_path = is_hot_path(rel);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.trim_start().starts_with("//") {
            continue;
        }
        if !clock_exempt && WALL_CLOCK.iter().any(|p| line.contains(p)) {
            findings.push(Finding {
                file: rel.to_string(),
                line: idx + 1,
                rule: "wall-clock",
                message: "wall-clock time source outside the virtual clock (use SimClock)"
                    .to_string(),
            });
        }
        if in_test[idx] {
            continue;
        }
        if hash_sensitive && (line.contains("HashMap") || line.contains("HashSet")) {
            let allowed = line.contains(ALLOW_HASH_ITER)
                || (idx > 0 && lines[idx - 1].contains(ALLOW_HASH_ITER));
            if !allowed {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "hash-iter",
                    message: format!(
                        "hash collection in serialization-sensitive code; use BTreeMap/BTreeSet \
                         or annotate `{ALLOW_HASH_ITER}`"
                    ),
                });
            }
        }
        if hot_path {
            if let Some(p) = STRING_KEYED_MAPS.iter().find(|p| line.contains(**p)) {
                let allowed = line.contains(ALLOW_STRING_KEYED_MAP)
                    || (idx > 0 && lines[idx - 1].contains(ALLOW_STRING_KEYED_MAP));
                if !allowed {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: idx + 1,
                        rule: "string-keyed-map",
                        message: format!(
                            "`{p}` on the hot path re-compares key bytes per probe; key by \
                             interned `Symbol` or annotate `{ALLOW_STRING_KEYED_MAP}`"
                        ),
                    });
                }
            }
            if let Some(p) = PANICKING.iter().find(|p| line.contains(**p)) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: "unwrap-hot-path",
                    message: format!(
                        "panicking call `{p}` on the offload hot path; return a typed error"
                    ),
                });
            }
            if in_loop[idx] {
                if let Some(p) = COLLECT_ALLOCS.iter().find(|p| line.contains(**p)) {
                    let allowed = line.contains(ALLOW_COLLECT_IN_LOOP)
                        || (idx > 0 && lines[idx - 1].contains(ALLOW_COLLECT_IN_LOOP));
                    if !allowed {
                        findings.push(Finding {
                            file: rel.to_string(),
                            line: idx + 1,
                            rule: "collect-in-loop",
                            message: format!(
                                "`{p}` allocates inside a loop body on the hot path; hoist it \
                                 or annotate `{ALLOW_COLLECT_IN_LOOP}`"
                            ),
                        });
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_flagged_outside_bench_and_lint() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let found = lint_file("crates/core/src/device.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "wall-clock");
        assert_eq!(found[0].line, 1);
        assert!(lint_file("crates/bench/benches/micro.rs", src).is_empty());
        assert!(lint_file("crates/lint/src/main.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_applies_even_inside_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { SystemTime::now(); }\n}\n";
        let found = lint_file("crates/net/src/clock.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn hash_iter_respects_allow_comments() {
        let bare = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let found = lint_file("crates/webapp/src/snapshot.rs", bare);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "hash-iter");
        let same_line = "let v = HashSet::new(); // lint: allow(hash-iter)\n";
        assert!(lint_file("crates/webapp/src/snapshot.rs", same_line).is_empty());
        let prev_line = "// never iterated; lint: allow(hash-iter)\nlet v = HashSet::new();\n";
        assert!(lint_file("crates/webapp/src/delta.rs", prev_line).is_empty());
        // Not serialization-sensitive: no finding.
        assert!(lint_file("crates/dnn/src/zoo.rs", bare).is_empty());
    }

    #[test]
    fn panicking_calls_are_flagged_only_on_hot_paths() {
        let src = "fn f() { x.unwrap(); }\n";
        let found = lint_file("crates/webapp/src/interp.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unwrap-hot-path");
        assert!(lint_file("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_the_panic_rule() {
        let src = "fn f() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { \
                   assert_eq!(super::f(), 1); x.unwrap(); }\n}\nfn g() { y.expect(\"boom\"); }\n";
        let found = lint_file("crates/net/src/link.rs", src);
        assert_eq!(found.len(), 1, "only the post-module expect is caught");
        assert_eq!(found[0].line, 7);
        assert!(found[0].message.contains(".expect("));
    }

    #[test]
    fn comment_lines_are_ignored() {
        let src = "// mentions Instant::now and .unwrap() in prose\n";
        assert!(lint_file("crates/webapp/src/interp.rs", src).is_empty());
    }

    #[test]
    fn hot_path_is_derived_from_crate_globs() {
        // New files under hot crates are covered without editing the lint.
        assert!(is_hot_path("crates/analyze/src/effects.rs"));
        assert!(is_hot_path("crates/webapp/src/interp.rs"));
        assert!(is_hot_path("crates/net/src/link.rs"));
        assert!(is_hot_path("crates/core/src/session.rs"));
        // The balancer runs per round start on the engine's hot loop.
        assert!(is_hot_path("crates/core/src/balance.rs"));
        // Opt-outs and other crates are not.
        assert!(!is_hot_path("crates/core/src/privacy.rs"));
        assert!(!is_hot_path("crates/cli/src/main.rs"));
        assert!(!is_hot_path("crates/bench/src/lib.rs"));
        assert!(!is_hot_path("tests/effects.rs"));
    }

    #[test]
    fn collect_in_loop_is_flagged_on_hot_paths() {
        let src = "fn f() {\n    while go() {\n        let v = Vec::new();\n    }\n}\n";
        let found = lint_file("crates/webapp/src/interp.rs", src);
        assert_eq!(
            found.len(),
            1,
            "{found:?}",
            found = found.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
        assert_eq!(found[0].rule, "collect-in-loop");
        assert_eq!(found[0].line, 3);
        // Same allocation outside any loop: fine.
        let flat = "fn f() {\n    let v = Vec::new();\n}\n";
        assert!(lint_file("crates/webapp/src/interp.rs", flat).is_empty());
        // And on a non-hot file: fine.
        assert!(lint_file("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn collect_in_loop_respects_allow_comments() {
        let same_line =
            "fn f() {\n    for x in xs {\n        let v = Vec::new(); // lint: allow(collect-in-loop)\n    }\n}\n";
        assert!(lint_file("crates/webapp/src/delta.rs", same_line).is_empty());
        let prev_line = "fn f() {\n    for x in xs {\n        // per-item buffer; lint: allow(collect-in-loop)\n        let v = String::new();\n    }\n}\n";
        assert!(lint_file("crates/webapp/src/delta.rs", prev_line).is_empty());
    }

    #[test]
    fn loop_regions_cover_nested_and_multiline_headers() {
        let src = "fn f() {\n    for a in xs\n        .iter()\n    {\n        while b {\n            g();\n        }\n        h();\n    }\n    tail();\n}\n";
        let lines: Vec<&str> = src.lines().collect();
        let mask = loop_region_mask(&lines);
        assert!(mask[4] && mask[5] && mask[7], "{mask:?}");
        assert!(!mask[9], "tail() is outside the loop: {mask:?}");
        assert!(!mask[0], "fn header is outside: {mask:?}");
    }

    #[test]
    fn test_modules_are_exempt_from_collect_in_loop() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { for x in xs { let v = vec![x]; } }\n}\n";
        assert!(lint_file("crates/webapp/src/interp.rs", src).is_empty());
    }

    #[test]
    fn string_keyed_maps_are_flagged_on_hot_paths() {
        let src = "struct S { m: BTreeMap<String, u32> }\n";
        let found = lint_file("crates/webapp/src/browser.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "string-keyed-map");
        let hashed = "fn f() { let m: HashMap<String, u32> = HashMap::new(); }\n";
        let found = lint_file("crates/core/src/session.rs", hashed);
        assert_eq!(found.len(), 1, "HashMap<String, _> is flagged too");
        // Symbol-keyed maps and non-hot files are fine.
        let sym = "struct S { m: BTreeMap<Symbol, u32> }\n";
        assert!(lint_file("crates/webapp/src/browser.rs", sym).is_empty());
        assert!(lint_file("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn string_keyed_map_respects_allow_comments() {
        let same_line = "struct S { m: BTreeMap<String, u32> } // lint: allow(string-keyed-map)\n";
        assert!(lint_file("crates/webapp/src/value.rs", same_line).is_empty());
        let prev_line =
            "// app-data keys; lint: allow(string-keyed-map)\nstruct S { m: BTreeMap<String, u32> }\n";
        assert!(lint_file("crates/webapp/src/value.rs", prev_line).is_empty());
        let test_mod =
            "#[cfg(test)]\nmod tests {\n    fn t() { let m: BTreeMap<String, u32> = BTreeMap::new(); }\n}\n";
        assert!(lint_file("crates/webapp/src/browser.rs", test_mod).is_empty());
    }

    #[test]
    fn findings_render_with_file_and_line() {
        let f = Finding {
            file: "crates/x.rs".into(),
            line: 12,
            rule: "wall-clock",
            message: "msg".into(),
        };
        assert_eq!(f.to_string(), "crates/x.rs:12: [wall-clock] msg");
    }
}
